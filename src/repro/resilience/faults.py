"""Fault plans and the failure injector.

The injector turns declarative :class:`FaultPlan` entries into concrete
infrastructure failures, layered on the sim kernel's interrupt mechanism:

``crash``
    The worker dies abruptly: its running job is interrupted with
    :class:`~repro.sim.NodeCrash`, the engine deregisters (the OS is gone),
    and the node is marked failed so the scheduler avoids it.
``hang``
    The worker freezes: the job keeps "running" but stops making progress
    and stops heartbeating (:class:`~repro.sim.NodeHang`).  Only the
    session heartbeat monitor can detect this.
``slow``
    The worker degrades: analysis compute is scaled by ``slow_factor``
    (preemption / noisy neighbour).  No interrupt is delivered.
``link-down``
    Every network link of the worker goes down: in-flight transfers fail
    with :class:`~repro.sim.LinkDown` and heartbeats stop reaching the
    manager while the engine keeps computing uselessly.

Faults fire either at an absolute simulated time (``at=...``) or
probabilistically (``probability=...`` per check interval, driven by a
seeded RNG so chaos runs are reproducible).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.grid.network import Network
from repro.grid.scheduler import BatchScheduler
from repro.sim import Environment, LinkDown, NodeCrash, NodeHang

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.replica.manager import ReplicaManager

#: Recognised fault kinds.
FAULT_KINDS = ("crash", "hang", "slow", "link-down")

#: Recognised service-level fault kinds (manager-node process faults).
#: ``combiner-crash`` kills one merge-tier sub-merger (its volatile
#: partial state is lost; affected engines are asked to resync).
SERVICE_FAULT_KINDS = (
    "service-crash",
    "service-restart",
    "checkpoint-torn",
    "combiner-crash",
)

#: Recognised site-level fault kinds (federation WAN events).
SITE_FAULT_KINDS = ("site-partition", "site-heal")


class ServiceUnavailable(Exception):
    """A manager-node service endpoint is down (process crashed).

    Raised by SessionService/AIDAManagerService entry points while the
    service is between a crash and its restart+recovery; clients treat it
    (like a revoked-token ``Fault``) as a signal to back off and
    :meth:`~repro.client.client.IPAClient.reconnect`.
    """


@dataclass(frozen=True)
class ServiceFault:
    """One planned manager-node service fault at an absolute time.

    ``service-crash``
        The SessionService + AIDA manager processes die: volatile session
        state is lost, tokens are revoked, endpoints raise
        :class:`ServiceUnavailable` until restart.
    ``checkpoint-torn``
        Same, but the crash lands mid-checkpoint-flush, leaving a torn
        record recovery must tolerate.
    ``service-restart``
        The processes come back and run cold-start recovery from the
        durable journal + checkpoints.
    """

    kind: str
    at: float

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ValueError(f"unknown service fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("at must be >= 0")


@dataclass(frozen=True)
class SiteFault:
    """One planned site-level WAN fault at an absolute time.

    ``site-partition``
        Every boundary link of the site (links with exactly one endpoint
        inside it) goes down: in-flight WAN transfers fail with
        :class:`~repro.sim.LinkDown`, no route in or out of the site
        survives, but the site keeps running internally.  The federation
        layer heals sessions stranded at a partitioned site by brokered
        failover to the next-ranked site.
    ``site-heal``
        The boundary links come back up.
    """

    site: str
    at: float
    kind: str = "site-partition"

    def __post_init__(self) -> None:
        if self.kind not in SITE_FAULT_KINDS:
            raise ValueError(f"unknown site fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("at must be >= 0")


@dataclass(frozen=True)
class WorkerFault:
    """One planned fault against a named worker.

    Exactly one of ``at`` (absolute simulated time) or ``probability``
    (chance per plan check interval) should be set.
    """

    worker: str
    kind: str = "crash"
    at: Optional[float] = None
    probability: float = 0.0
    slow_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at is None and self.probability <= 0.0:
            raise ValueError("fault needs either at= or probability>0")
        if self.at is not None and self.at < 0:
            raise ValueError("at must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1.0")


@dataclass
class FaultPlan:
    """A reproducible schedule of infrastructure faults.

    Parameters
    ----------
    faults:
        The planned faults.
    seed:
        RNG seed for probabilistic faults.
    check_every:
        Interval (simulated seconds) at which probabilistic faults are
        rolled.
    horizon:
        Stop rolling probabilistic faults after this simulated time
        (``None`` = keep rolling until every one has fired).
    """

    faults: List[WorkerFault] = field(default_factory=list)
    seed: int = 0
    check_every: float = 5.0
    horizon: Optional[float] = None
    service_faults: List[ServiceFault] = field(default_factory=list)
    site_faults: List[SiteFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.check_every <= 0:
            raise ValueError("check_every must be > 0")

    def add(self, fault: WorkerFault) -> "FaultPlan":
        """Append a fault; returns self for chaining."""
        self.faults.append(fault)
        return self

    def add_service(self, fault: ServiceFault) -> "FaultPlan":
        """Append a service-level fault; returns self for chaining."""
        self.service_faults.append(fault)
        return self

    def add_site(self, fault: SiteFault) -> "FaultPlan":
        """Append a site-level fault; returns self for chaining."""
        self.site_faults.append(fault)
        return self

    def scheduled(self) -> List[WorkerFault]:
        """Faults pinned to an absolute time, in firing order."""
        return sorted(
            (f for f in self.faults if f.at is not None),
            key=lambda f: (f.at, f.worker),
        )

    def probabilistic(self) -> List[WorkerFault]:
        """Faults fired by per-interval dice rolls."""
        return [f for f in self.faults if f.at is None]


class FailureInjector:
    """Applies faults to a running site.

    Parameters
    ----------
    env, scheduler:
        The simulation environment and the batch scheduler owning the
        workers.
    network:
        Needed only for ``link-down`` faults.
    replicas:
        Optional replica manager: worker-killing faults then invalidate
        the victim's cached dataset parts so no stale replica is served.
    session_service:
        Needed only for service-level faults (crash/restart of the
        manager-node processes).
    """

    def __init__(
        self,
        env: Environment,
        scheduler: BatchScheduler,
        network: Optional[Network] = None,
        replicas: Optional["ReplicaManager"] = None,
        session_service=None,
        obs=None,
    ) -> None:
        from repro.obs import NULL_OBS

        self.env = env
        self.scheduler = scheduler
        self.network = network
        self.replicas = replicas
        self.session_service = session_service
        self.obs = obs or NULL_OBS
        #: Chronological record of injected faults: (time, kind, worker).
        self.log: List[Tuple[float, str, str]] = []

    def _record(self, kind: str, target: str, **attrs) -> None:
        self.log.append((self.env.now, kind, target))
        self.obs.events.emit(
            "fault_injected",
            message=f"{kind} -> {target}",
            severity="warning",
            kind=kind,
            target=target,
            **attrs,
        )

    # -- direct injection ------------------------------------------------
    def crash_worker(self, name: str) -> None:
        """Kill *name* abruptly (its job fails with :class:`NodeCrash`)."""
        worker = self.scheduler.element.worker(name)
        worker.failed = True
        self._interrupt_job(name, NodeCrash(name, "worker crashed"))
        if self.replicas is not None:
            self.replicas.invalidate_host(name)
        self._record("crash", name)

    def hang_worker(self, name: str) -> None:
        """Freeze *name*: the job never terminates, heartbeats stop."""
        worker = self.scheduler.element.worker(name)
        worker.failed = True
        self._interrupt_job(name, NodeHang(name, "worker hung"))
        if self.replicas is not None:
            self.replicas.invalidate_host(name)
        self._record("hang", name)

    def slow_worker(self, name: str, factor: float = 4.0) -> None:
        """Degrade *name*: analysis compute is scaled by *factor*."""
        if factor < 1.0:
            raise ValueError("factor must be >= 1.0")
        worker = self.scheduler.element.worker(name)
        worker.slow_factor = factor
        self._record("slow", name, factor=factor)

    def crash_combiner(self, session_id: str, combiner_id: str):
        """Kill one merge-tier combiner node (generator process).

        The combiner's volatile caches are lost at the AIDA manager; the
        affected paths re-fold without the lost contributions and every
        affected *live* engine is directed to republish a full keyframe
        (finished engines would otherwise never resend — see
        ``SessionService.resync_engines``).  Returns the affected engine
        ids.
        """
        if self.session_service is None:
            raise ValueError("injector built without a session_service")
        affected = self.session_service.aida.crash_combiner(
            session_id, combiner_id
        )
        self._record(
            "combiner-crash",
            combiner_id,
            session=session_id,
            engines=len(affected),
        )
        yield from self.session_service.resync_engines(session_id, affected)
        return affected

    def cut_links(self, name: str) -> List[str]:
        """Take down every network link of worker *name*.

        The engine keeps computing but cannot heartbeat or receive
        directives, so the session monitor eventually declares it dead.
        Returns the failed link names (for :meth:`restore_links`).
        """
        if self.network is None:
            raise ValueError("injector built without a network")
        worker = self.scheduler.element.worker(name)
        worker.failed = True
        worker.link_down = True
        failed = self.network.fail_links_of(name)
        if self.replicas is not None:
            # Conservative: a partitioned worker may be rebuilt before its
            # links return, so treat its cached parts as lost.
            self.replicas.invalidate_host(name)
        self._record("link-down", name)
        return failed

    def restore_links(self, name: str) -> None:
        """Bring a worker's links back up and mark the node healthy."""
        if self.network is None:
            raise ValueError("injector built without a network")
        worker = self.scheduler.element.worker(name)
        worker.link_down = False
        self.network.restore_links_of(name)
        self.scheduler.restore_worker(name)
        self.log.append((self.env.now, "link-up", name))

    def restore_worker(self, name: str) -> None:
        """Return a crashed/hung/slow worker to the schedulable pool."""
        self.scheduler.restore_worker(name)
        self.log.append((self.env.now, "restore", name))

    # -- site faults -------------------------------------------------------
    def partition_site(self, site: str) -> List[str]:
        """Cut every boundary link of *site* (WAN partition).

        Intra-site links stay up, so the site keeps computing internally;
        in-flight transfers crossing the boundary fail with
        :class:`~repro.sim.LinkDown`.  Returns the failed link names (for
        :meth:`heal_site`).  Idempotent at the link level.
        """
        if self.network is None:
            raise ValueError("injector built without a network")
        names = [link.name for link in self.network.boundary_links(site)]
        for link_name in names:
            self.network.fail_link(link_name)
        self._record("site-partition", site, links=len(names))
        return names

    def heal_site(self, site: str) -> List[str]:
        """Restore every boundary link of *site*; returns their names."""
        if self.network is None:
            raise ValueError("injector built without a network")
        names = [link.name for link in self.network.boundary_links(site)]
        for link_name in names:
            self.network.restore_link(link_name)
        self.log.append((self.env.now, "site-heal", site))
        return names

    def apply_site_fault(self, fault: SiteFault) -> None:
        """Fire one planned site fault now."""
        if fault.kind == "site-partition":
            self.partition_site(fault.site)
        elif fault.kind == "site-heal":
            self.heal_site(fault.site)
        else:  # pragma: no cover - guarded by SiteFault validation
            raise ValueError(f"unknown site fault kind {fault.kind!r}")

    # -- service faults ---------------------------------------------------
    def crash_services(self, torn_checkpoint: bool = False) -> None:
        """Kill the SessionService + AIDA manager processes.

        Volatile session state is lost and every RMI token revoked; the
        durable journal/checkpoint files survive (minus any unsynced
        tail).  With ``torn_checkpoint`` the crash lands mid-flush,
        leaving a half-written checkpoint record behind.
        """
        if self.session_service is None:
            raise ValueError("injector built without a session_service")
        self.session_service.crash(torn_checkpoint=torn_checkpoint)
        kind = "checkpoint-torn" if torn_checkpoint else "service-crash"
        self._record(kind, "manager")

    def restart_services(self):
        """Restart the services and run cold-start recovery.

        Returns the recovery process; ``yield`` it to wait for every
        journaled session to be rebuilt.
        """
        if self.session_service is None:
            raise ValueError("injector built without a session_service")
        self.log.append((self.env.now, "service-restart", "manager"))
        return self.env.process(self.session_service.recover())

    def apply_service_fault(self, fault: ServiceFault) -> None:
        """Fire one planned service fault now."""
        if fault.kind == "service-crash":
            self.crash_services()
        elif fault.kind == "checkpoint-torn":
            self.crash_services(torn_checkpoint=True)
        elif fault.kind == "service-restart":
            self.restart_services()
        else:  # pragma: no cover - guarded by ServiceFault validation
            raise ValueError(f"unknown service fault kind {fault.kind!r}")

    def apply_fault(self, fault: WorkerFault) -> None:
        """Fire one planned fault now."""
        if fault.kind == "crash":
            self.crash_worker(fault.worker)
        elif fault.kind == "hang":
            self.hang_worker(fault.worker)
        elif fault.kind == "slow":
            self.slow_worker(fault.worker, fault.slow_factor)
        elif fault.kind == "link-down":
            self.cut_links(fault.worker)
        else:  # pragma: no cover - guarded by WorkerFault validation
            raise ValueError(f"unknown fault kind {fault.kind!r}")

    # -- plan execution --------------------------------------------------
    def apply(self, plan: FaultPlan) -> List:
        """Start simulation processes that execute *plan*.

        Returns the started processes (for tests that want to wait on
        them); faults fire as simulated time reaches them.
        """
        procs = []
        for fault in plan.scheduled():
            procs.append(self.env.process(self._fire_at(fault)))
        for service_fault in sorted(plan.service_faults, key=lambda f: f.at):
            procs.append(self.env.process(self._fire_service_at(service_fault)))
        for site_fault in sorted(
            plan.site_faults, key=lambda f: (f.at, f.site)
        ):
            procs.append(self.env.process(self._fire_site_at(site_fault)))
        if plan.probabilistic():
            procs.append(self.env.process(self._roll(plan)))
        return procs

    def _fire_at(self, fault: WorkerFault):
        delay = fault.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.apply_fault(fault)

    def _fire_service_at(self, fault: ServiceFault):
        delay = fault.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.apply_service_fault(fault)

    def _fire_site_at(self, fault: SiteFault):
        delay = fault.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.apply_site_fault(fault)

    def _roll(self, plan: FaultPlan):
        rng = random.Random(plan.seed)
        outstanding = list(plan.probabilistic())
        while outstanding:
            if plan.horizon is not None and self.env.now >= plan.horizon:
                return
            yield self.env.timeout(plan.check_every)
            for fault in list(outstanding):
                if rng.random() < fault.probability:
                    self.apply_fault(fault)
                    outstanding.remove(fault)

    # -- internals --------------------------------------------------------
    def _interrupt_job(self, worker_name: str, cause) -> None:
        job = self.scheduler.running_job_on(worker_name)
        if job is not None and job._process is not None and job._process.is_alive:
            job._process.interrupt(cause)
