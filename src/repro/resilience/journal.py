"""Durable session journal: the write-ahead log behind service recovery.

The original deployment kept all session state in the memory of the
manager-node service JVM — a SessionService or AIDA-manager restart lost
every in-flight session.  This module provides the durable half of the
fix:

:class:`DurableStore`
    An in-memory model of the manager node's *local disk*: it survives a
    service-process crash (only the process' volatile dictionaries die)
    while honouring fsync semantics — appends made with ``sync=False``
    sit in a buffered tail that a crash discards, exactly like page-cache
    writes that never reached the platter.

:class:`SessionJournal`
    A per-session append-only log of state transitions (create, stage
    plan, code stage, control verbs, quarantines, re-dispatches, replica
    pins, close).  Every record is a checksummed JSON line; readers stop
    at the first corrupt record, so a torn tail (a crash mid-append)
    costs at most the unflushed suffix, never the whole journal.

:func:`replay_journal`
    Folds a journal's records into a :class:`JournalModel` — the durable
    view of a session the restarted service rebuilds its volatile state
    from.

Journal and checkpoint writes charge **zero simulated time**: durability
is modelled as asynchronous local-disk I/O that never blocks the service
hot path, so enabling it does not perturb any calibrated timing.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


def json_default(value):
    """JSON encoder fallback: unwrap numpy scalars living in tree dicts."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"{type(value).__name__} is not JSON-serializable")


def encode_record(record: dict) -> str:
    """Serialize one record as a checksummed single-line string."""
    body = json.dumps(record, sort_keys=True, default=json_default)
    checksum = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{checksum:08x} {body}"


def decode_record(line: str) -> Optional[dict]:
    """Parse a checksummed line; ``None`` for corrupt/torn records."""
    checksum, sep, body = line.partition(" ")
    if not sep or not body:
        return None
    try:
        expected = int(checksum, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(body)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


class DurableStore:
    """The manager node's local disk, as seen by the service processes.

    Files are ordered lists of text lines.  Each file tracks a *synced
    watermark*: lines above it were fsync'd and survive anything; lines
    past it are buffered and are dropped by :meth:`crash` (the modelled
    power-cut / process-kill).  :meth:`tear` additionally truncates the
    last line mid-way — the torn-write case a checksummed reader must
    tolerate.
    """

    def __init__(self) -> None:
        self._files: Dict[str, List[str]] = {}
        self._synced: Dict[str, int] = {}

    def append(self, name: str, line: str, sync: bool = True) -> None:
        """Append one line; with ``sync`` it is durable immediately."""
        lines = self._files.setdefault(name, [])
        lines.append(line)
        if sync:
            self._synced[name] = len(lines)

    def sync(self, name: str) -> None:
        """fsync: make every buffered line of *name* durable."""
        if name in self._files:
            self._synced[name] = len(self._files[name])

    def read(self, name: str) -> List[str]:
        """All lines currently visible (synced or still buffered)."""
        return list(self._files.get(name, []))

    def names(self, prefix: str = "") -> List[str]:
        """Sorted file names, optionally filtered by prefix."""
        return sorted(n for n in self._files if n.startswith(prefix))

    def delete(self, name: str) -> None:
        """Remove a file (idempotent)."""
        self._files.pop(name, None)
        self._synced.pop(name, None)

    def size_bytes(self, name: str) -> int:
        """Total bytes currently held for *name*."""
        return sum(len(line) for line in self._files.get(name, ()))

    def tear(self, name: str) -> None:
        """Truncate the last line mid-way (a torn write caught by a crash)."""
        lines = self._files.get(name)
        if not lines:
            return
        last = lines[-1]
        lines[-1] = last[: max(1, len(last) // 2)]

    def crash(self) -> None:
        """Power-cut semantics: every unsynced buffered tail is lost."""
        for name, lines in self._files.items():
            keep = self._synced.get(name, 0)
            del lines[keep:]


class SessionJournal:
    """Append-only, checksummed write-ahead log for one session.

    With ``fsync=True`` (the default) every record is durable the moment
    :meth:`append` returns; with ``fsync=False`` records are buffered
    until the next :meth:`sync` (the checkpoint loop syncs on every
    checkpoint), trading the buffered tail for lower modelled I/O load.
    """

    PREFIX = "journal/"

    def __init__(
        self, store: DurableStore, session_id: str, fsync: bool = True
    ) -> None:
        self.store = store
        self.session_id = session_id
        self.fsync = fsync
        self.name = self.name_for(session_id)
        #: Corrupt/torn lines skipped by the last :meth:`records` call.
        self.torn_records = 0
        self._seq = 0
        for record in self.records():
            self._seq = max(self._seq, record.get("seq", 0))

    @classmethod
    def name_for(cls, session_id: str) -> str:
        return cls.PREFIX + session_id

    @classmethod
    def session_ids(cls, store: DurableStore) -> List[str]:
        """Sessions with a journal in *store*."""
        return [n[len(cls.PREFIX):] for n in store.names(cls.PREFIX)]

    def append(self, record_type: str, /, **data) -> dict:
        """Write one record; returns it (with its sequence number)."""
        self._seq += 1
        record = {"seq": self._seq, "type": record_type, "data": data}
        self.store.append(self.name, encode_record(record), sync=self.fsync)
        return record

    def sync(self) -> None:
        """Make every buffered record durable."""
        self.store.sync(self.name)

    def records(self) -> List[dict]:
        """Valid records in order, stopping at the first corrupt line.

        A torn tail (crash mid-append) therefore costs only the records
        at and after the tear, never earlier history.
        """
        out: List[dict] = []
        lines = self.store.read(self.name)
        for index, line in enumerate(lines):
            record = decode_record(line)
            if record is None:
                self.torn_records = len(lines) - index
                return out
            out.append(record)
        self.torn_records = 0
        return out


@dataclass
class JournalModel:
    """A session's durable state, folded from its journal records."""

    session_id: str
    owner: str = ""
    token: str = ""
    n_engines: int = 0
    #: Engines believed alive per the journal: engine_id -> worker name.
    engines: Dict[str, str] = field(default_factory=dict)
    #: Engines quarantined before the crash (their AIDA ban set).
    banned: Set[str] = field(default_factory=set)
    dataset_id: Optional[str] = None
    strategy: str = "by-events"
    size_mb: float = 0.0
    n_events: int = 0
    content: dict = field(default_factory=dict)
    #: Part descriptors of the current stage, as plain dicts.
    parts: List[dict] = field(default_factory=list)
    #: Current dispatch map: engine_id -> [part_index, ...].
    assignments: Dict[str, List[int]] = field(default_factory=dict)
    #: Part indexes orphaned by a quarantine and not yet re-dispatched.
    orphaned: List[int] = field(default_factory=list)
    #: Replica-cache keys pinned for this session.
    pin_keys: List[str] = field(default_factory=list)
    #: Timing/hit bookkeeping of the last stage (StagedDataset extras).
    staged: dict = field(default_factory=dict)
    class_name: Optional[str] = None
    running: bool = False
    rewinds: int = 0
    closing: bool = False
    closed: bool = False


def replay_journal(records: List[dict]) -> Optional[JournalModel]:
    """Fold journal *records* into the session's durable state.

    Returns ``None`` when no ``create`` record survived (nothing to
    recover).  The fold mirrors the live bookkeeping: quarantines move an
    engine's parts to the orphan pool, dispatches move one part back to
    its new owner, spare joins add engines.
    """
    model: Optional[JournalModel] = None
    for record in records:
        rtype = record.get("type")
        data = record.get("data", {})
        if rtype == "create":
            model = JournalModel(
                session_id=data["session_id"],
                owner=data.get("owner", ""),
                token=data.get("token", ""),
                n_engines=data.get("n_engines", 0),
                engines=dict(data.get("engines", {})),
            )
            continue
        if model is None:
            continue
        if rtype == "stage":
            model.dataset_id = data["dataset_id"]
            model.strategy = data.get("strategy", "by-events")
            model.size_mb = data.get("size_mb", 0.0)
            model.n_events = data.get("n_events", 0)
            model.content = dict(data.get("content", {}))
            model.parts = list(data.get("parts", []))
            model.assignments = {
                engine_id: list(indexes)
                for engine_id, indexes in data.get("assignments", {}).items()
            }
            model.orphaned = []
            model.staged = dict(data.get("staged", {}))
        elif rtype == "pins":
            model.pin_keys = list(data.get("keys", []))
        elif rtype == "code":
            model.class_name = data.get("class_name")
        elif rtype == "control":
            verb = data.get("verb")
            if verb in ("run", "step"):
                model.running = True
            elif verb in ("pause", "stop"):
                model.running = False
            elif verb == "rewind":
                model.rewinds += 1
        elif rtype == "quarantine":
            engine_id = data["engine_id"]
            model.engines.pop(engine_id, None)
            model.banned.add(engine_id)
            model.orphaned.extend(model.assignments.pop(engine_id, []))
        elif rtype == "dispatch":
            engine_id = data["engine_id"]
            part_index = data["part_index"]
            if part_index in model.orphaned:
                model.orphaned.remove(part_index)
            model.assignments.setdefault(engine_id, []).append(part_index)
        elif rtype == "engine_joined":
            model.engines[data["engine_id"]] = data["worker"]
        elif rtype == "closing":
            model.closing = True
        elif rtype == "closed":
            model.closed = True
    return model
