"""Failure model and recovery subsystem for the IPA reproduction.

Real OSG worker nodes are preempted, crash, and lose their network
mid-session; DIAL and the GridFTP replica-management work both treat
engine/transfer fault tolerance as a first-class requirement for
interactive grid analysis.  This package provides the three building
blocks the grid and session layers share:

``RetryPolicy`` (:mod:`repro.resilience.retry`)
    Exponential backoff with deterministic jitter, a deadline, and a
    max-attempt budget — used by GridFTP transfers, GRAM submission,
    service-envelope dispatch and recovery re-staging.
``FaultPlan`` / ``FailureInjector`` (:mod:`repro.resilience.faults`)
    Declarative, seeded fault schedules (crash / hang / slow node /
    link-down) applied to workers via kernel interrupts.
``RecoveryConfig`` / ``HeartbeatMonitor`` (:mod:`repro.resilience.heartbeat`)
    Heartbeat bookkeeping and the tunables of the session service's
    detect-and-re-dispatch loop.
``SessionJournal`` / ``CheckpointStore`` (:mod:`repro.resilience.journal`,
:mod:`repro.resilience.checkpoint`)
    The durable session layer: a write-ahead journal of state
    transitions plus keyframe/delta checkpoints of merge state, both on
    a crash-surviving :class:`~repro.resilience.journal.DurableStore`,
    enabling cold-start recovery after a service-process crash.
"""

from repro.resilience.checkpoint import CheckpointStore, DurabilityConfig
from repro.resilience.faults import (
    FAULT_KINDS,
    SERVICE_FAULT_KINDS,
    SITE_FAULT_KINDS,
    FailureInjector,
    FaultPlan,
    ServiceFault,
    ServiceUnavailable,
    SiteFault,
    WorkerFault,
)
from repro.resilience.heartbeat import HeartbeatMonitor, RecoveryConfig
from repro.resilience.journal import (
    DurableStore,
    JournalModel,
    SessionJournal,
    replay_journal,
)
from repro.resilience.retry import RetryPolicy, retrying

__all__ = [
    "FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
    "SITE_FAULT_KINDS",
    "CheckpointStore",
    "DurabilityConfig",
    "DurableStore",
    "FailureInjector",
    "FaultPlan",
    "HeartbeatMonitor",
    "JournalModel",
    "RecoveryConfig",
    "RetryPolicy",
    "ServiceFault",
    "ServiceUnavailable",
    "SessionJournal",
    "SiteFault",
    "WorkerFault",
    "replay_journal",
    "retrying",
]
