"""Periodic session checkpoints: compact snapshots of merge state.

While the journal (``journal.py``) records *control-plane* transitions,
checkpoints persist the *data plane*: the AIDA manager's per-engine
merge state (sequence cursors, ban set, full object trees).  Replaying
the journal alone would force every live engine to resend its entire
history; a checkpoint lets recovery restore the merge cache to the last
flushed state and ask engines only for what came after.

The on-disk format reuses the keyframe/delta idea from the incremental
snapshot pipeline (PR 4): every ``checkpoint_keyframe_every``-th write is
a full keyframe, the writes in between are deltas carrying only engines
whose sequence advanced since the previous checkpoint.  Records are
checksummed lines in the :class:`~repro.resilience.journal.DurableStore`;
:meth:`CheckpointStore.load` folds the last *committed* keyframe plus
subsequent committed deltas, so a torn final record (crash mid-flush)
silently falls back to the previous consistent state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .journal import DurableStore, decode_record, encode_record


@dataclass
class DurabilityConfig:
    """Wiring + cadence knobs for the durable session layer.

    ``checkpoint_every_s``
        Simulated seconds between periodic checkpoints of each live
        session (the write itself charges no simulated time).
    ``journal_fsync``
        When True (default) every journal record is durable immediately;
        when False records buffer until the next checkpoint syncs them,
        so a crash can lose the journal tail written since then.
    ``checkpoint_keyframe_every``
        Every Nth checkpoint is a full keyframe; the rest are deltas.
    """

    store: DurableStore
    checkpoint_every_s: float = 30.0
    journal_fsync: bool = True
    checkpoint_keyframe_every: int = 4


class CheckpointStore:
    """Keyframe/delta checkpoint writer+reader for one session."""

    PREFIX = "checkpoint/"

    def __init__(
        self,
        store: DurableStore,
        session_id: str,
        keyframe_every: int = 4,
    ) -> None:
        self.store = store
        self.session_id = session_id
        self.keyframe_every = max(1, keyframe_every)
        self.name = self.PREFIX + session_id
        # A fresh writer (service restart) always starts with a keyframe:
        # it has no in-memory baseline to delta against.
        self._writes = 0
        self._last_seqs: Dict[str, int] = {}
        self._last_run_id = -1

    def write(self, session_state: dict, merge_state: dict, torn: bool = False) -> str:
        """Append one checkpoint record; returns ``"keyframe"``/``"delta"``.

        With ``torn`` the record is cut in half mid-line before the append
        (modelling a crash during the flush) and the writer's delta
        baseline is left untouched — the torn bytes must be invisible to
        :meth:`load`.
        """
        run_id = merge_state.get("run_id", 0)
        keyframe = (
            self._writes % self.keyframe_every == 0
            or run_id != self._last_run_id
        )
        engines = merge_state.get("engines", {})
        if keyframe:
            payload = dict(merge_state)
        else:
            changed = {
                engine_id: state
                for engine_id, state in engines.items()
                if state.get("sequence", 0) > self._last_seqs.get(engine_id, -1)
            }
            removed = [e for e in self._last_seqs if e not in engines]
            payload = dict(merge_state)
            payload["engines"] = changed
            payload["removed"] = removed
        record = {
            "kind": "keyframe" if keyframe else "delta",
            "session": session_state,
            "merge": payload,
        }
        line = encode_record(record)
        if torn:
            self.store.append(self.name, line[: max(1, len(line) // 2)], sync=True)
            return "torn"
        self.store.append(self.name, line, sync=True)
        self._writes += 1
        self._last_seqs = {
            engine_id: state.get("sequence", 0)
            for engine_id, state in engines.items()
        }
        self._last_run_id = run_id
        return record["kind"]

    def load(self) -> Optional[Tuple[dict, dict]]:
        """Latest consistent ``(session_state, merge_state)``, or None.

        Folds the last committed keyframe plus every committed delta after
        it; corrupt/torn records are skipped, so a crash mid-flush
        degrades to the previous checkpoint rather than poisoning
        recovery.
        """
        records: List[dict] = []
        for line in self.store.read(self.name):
            record = decode_record(line)
            if record is not None and record.get("kind") in ("keyframe", "delta"):
                records.append(record)
        last_key = None
        for index, record in enumerate(records):
            if record["kind"] == "keyframe":
                last_key = index
        if last_key is None:
            return None
        base = records[last_key]
        session_state = dict(base["session"])
        merge_state = dict(base["merge"])
        engines = dict(merge_state.get("engines", {}))
        for record in records[last_key + 1:]:
            delta = record["merge"]
            session_state = dict(record["session"])
            for engine_id in delta.get("removed", []):
                engines.pop(engine_id, None)
            engines.update(delta.get("engines", {}))
            for key, value in delta.items():
                if key not in ("engines", "removed"):
                    merge_state[key] = value
        merge_state["engines"] = engines
        merge_state.pop("removed", None)
        return session_state, merge_state

    def delete(self) -> None:
        """Drop the checkpoint file (session closed)."""
        self.store.delete(self.name)
