"""The three client plug-ins of the JAS Grid client (§3.1, Fig. 2).

Each plug-in is a thin, testable wrapper over one slice of the service
API; :class:`~repro.client.client.IPAClient` composes them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.aida.tree import ObjectTree
from repro.grid.security import Certificate, Credential, build_chain
from repro.services.aida_manager import MergeProgress
from repro.services.envelope import ServiceContainer
from repro.sim import Environment


class GridProxyPlugin:
    """Creates and holds the user's Grid proxy (Fig. 2 step 1).

    "A Grid proxy plug-in is available on the JAS Grid client that creates
    a proxy certificate that can be used to authenticate the client with
    the service."
    """

    def __init__(self, env: Environment, credential: Credential) -> None:
        self.env = env
        self.identity = credential
        self.proxy: Optional[Credential] = None

    def obtain_proxy(self, lifetime: float = 12 * 3600.0) -> Credential:
        """Create (or replace) the short-lived proxy credential."""
        self.proxy = self.identity.issue_proxy(self.env.now, lifetime)
        return self.proxy

    @property
    def chain(self) -> List[Certificate]:
        """The leaf-first certificate chain presented to services."""
        if self.proxy is None:
            raise RuntimeError("no proxy; call obtain_proxy() first")
        return build_chain(self.proxy, self.identity)


class DatasetCatalogPlugin:
    """The dataset chooser (Fig. 3): browse and query the catalog."""

    def __init__(self, container: ServiceContainer) -> None:
        self.container = container

    def browse(self, path: str = "/"):
        """Generator op: list a catalog directory."""
        listing = yield self.container.call("catalog", "browse", {"path": path})
        return listing

    def search(self, query: str):
        """Generator op: metadata query; returns matching entries."""
        hits = yield self.container.call("catalog", "search", {"query": query})
        return hits

    def entry(self, dataset_id: str):
        """Generator op: fetch one catalog entry by id."""
        entry = yield self.container.call(
            "catalog", "entry", {"dataset_id": dataset_id}
        )
        return entry


class RemoteDataPlugin:
    """Polls the AIDA manager over the cheap RMI channel (Fig. 2 step 7)."""

    def __init__(
        self, container: ServiceContainer, client_id: Optional[str] = None
    ) -> None:
        self.container = container
        #: Identifies this poller to the manager's coalescing layer so it
        #: can keep a per-client sequence cursor; ``None`` = anonymous.
        self.client_id = client_id
        self.token: Optional[str] = None
        self.session_id: Optional[str] = None

    def bind(self, session_id: str, token: str) -> None:
        """Attach to a session (the token gates the RMI channel)."""
        self.session_id = session_id
        self.token = token

    def poll(self):
        """Generator op: fetch the merged tree + progress once."""
        if self.session_id is None:
            raise RuntimeError("plugin not bound to a session")
        args = {"session_id": self.session_id}
        if self.client_id is not None:
            args["client_id"] = self.client_id
        tree_dict, progress = yield self.container.call(
            "aida",
            "merged",
            args,
            channel="rmi",
            token=self.token,
        )
        return ObjectTree.from_dict(tree_dict), progress
