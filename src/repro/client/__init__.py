"""The client layer: a headless Java-Analysis-Studio equivalent.

The JAS3 client was "enhanced with three plug-in modules that communicate
with the Web Services" (§3.1):

* the **Grid proxy plug-in** — creates the proxy certificate and performs
  mutual authentication;
* the **dataset catalog plug-in** — the dataset chooser dialog (Fig. 3);
* the **remote data plug-in** — polls the AIDA manager over RMI and keeps
  the displayed histograms fresh (Fig. 4).

:class:`~repro.client.client.IPAClient` composes the three plug-ins into
the user-facing facade driving the session workflow, and
:mod:`repro.client.display` renders live ASCII dashboards in place of the
JAS plot windows.
"""

from repro.client.client import IPAClient, PollResult
from repro.client.display import dashboard, render_catalog
from repro.client.plugins import (
    DatasetCatalogPlugin,
    GridProxyPlugin,
    RemoteDataPlugin,
)

__all__ = [
    "DatasetCatalogPlugin",
    "GridProxyPlugin",
    "IPAClient",
    "PollResult",
    "RemoteDataPlugin",
    "dashboard",
    "render_catalog",
]
