"""ASCII dashboards: headless stand-ins for the JAS windows.

``dashboard`` renders the merged-results view (Fig. 4);
``render_catalog`` renders the dataset-chooser view (Fig. 3);
``status_board`` renders the operator's telemetry view (nodes, SLO
gauges, stragglers, recent events — see :mod:`repro.obs.dashboard`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.aida.render import render_object
from repro.aida.tree import ObjectTree
from repro.services.aida_manager import MergeProgress
from repro.services.catalog import DatasetEntry


def progress_bar(fraction: float, width: int = 40) -> str:
    """Render ``[#####.....] 50.0%``."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return f"[{'#' * filled}{'.' * (width - filled)}] {fraction * 100:5.1f}%"


def dashboard(
    tree: ObjectTree,
    progress: Optional[MergeProgress] = None,
    max_objects: int = 4,
    width: int = 60,
    height: int = 10,
) -> str:
    """Render the merged results as a text dashboard.

    Shows the analysis progress line (engines reporting, events processed)
    followed by up to *max_objects* rendered histograms/profiles.
    """
    lines = ["=" * (width + 2)]
    if progress is not None:
        lines.append(
            f"session {progress.session_id}  "
            f"engines={progress.engines_reporting}  "
            f"run={progress.run_id}  "
            f"events={progress.events_processed}/{progress.total_events}"
        )
        lines.append(progress_bar(progress.fraction_done, width=width - 8))
    paths = tree.paths()
    for path in paths[:max_objects]:
        lines.append("-" * (width + 2))
        lines.append(path)
        try:
            lines.append(
                render_object(tree.get(path), width=width, height=height)
            )
        except TypeError:
            # Renderer for this type takes no size kwargs.
            lines.append(render_object(tree.get(path)))
    if len(paths) > max_objects:
        lines.append(f"... and {len(paths) - max_objects} more objects")
    lines.append("=" * (width + 2))
    return "\n".join(lines)


def status_board(
    obs,
    session_service=None,
    session_id: Optional[str] = None,
    max_events: int = 8,
) -> str:
    """Render the live telemetry status board for one run.

    Thin client-side wrapper over
    :func:`repro.obs.dashboard.render_board` so display code can stay
    imported from one place; works mid-run and degrades gracefully when
    observability is disabled.
    """
    from repro.obs.dashboard import render_board

    return render_board(
        obs,
        session_service=session_service,
        session_id=session_id,
        max_events=max_events,
    )


def render_catalog(
    listing: dict,
    path: str = "/",
    entries: Optional[Sequence[DatasetEntry]] = None,
) -> str:
    """Render a catalog browse result as the Fig.-3-style chooser view.

    Parameters
    ----------
    listing:
        Output of ``browse``: ``{"directories": [...], "datasets": [...]}``.
    path:
        The directory being shown.
    entries:
        Optional full entries for the listed datasets (adds size/event
        columns when provided).
    """
    lines = [f"Dataset Catalog — {path}", "-" * 48]
    for directory in listing.get("directories", []):
        lines.append(f"  [+] {directory}/")
    by_name = {}
    if entries:
        for entry in entries:
            by_name[entry.path.rsplit("/", 1)[-1]] = entry
    for dataset in listing.get("datasets", []):
        entry = by_name.get(dataset)
        if entry is not None:
            lines.append(
                f"  [=] {dataset}  ({entry.size_mb:.0f} MB, "
                f"{entry.n_events} events)"
            )
        else:
            lines.append(f"  [=] {dataset}")
    if len(lines) == 2:
        lines.append("  (empty)")
    return "\n".join(lines)
