"""IPAClient: the user-facing facade over the whole workflow of Fig. 2.

Every method that talks to the site is a *generator operation* meant to be
driven inside the simulation::

    def scenario(site, client):
        yield from client.obtain_proxy_and_connect()
        yield from client.select_dataset("ilc-zh-500gev")
        yield from client.upload_code(bundle)
        yield from client.run()
        tree, progress = yield from client.wait_for_completion()
        ...

    site.env.run(until=site.env.process(scenario(site, client)))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.aida.tree import ObjectTree
from repro.client.plugins import (
    DatasetCatalogPlugin,
    GridProxyPlugin,
    RemoteDataPlugin,
)
from repro.engine.controls import Command
from repro.engine.sandbox import CodeBundle
from repro.grid.security import Credential
from repro.resilience.faults import ServiceUnavailable
from repro.resilience.retry import RetryPolicy
from repro.services.aida_manager import MergeProgress
from repro.services.envelope import Fault, RetryAfter
from repro.services.session import SessionInfo, StagedDataset

#: Default backoff for :meth:`IPAClient.reconnect`: ~8 attempts over a few
#: minutes, matching how long a manager-node service restart takes.
RECONNECT_POLICY = RetryPolicy(
    max_attempts=8, base_delay=0.5, multiplier=2.0, max_delay=30.0
)


class ClientError(Exception):
    """Raised on client-side workflow mistakes (e.g. no session yet)."""


@dataclass(frozen=True)
class PollResult:
    """One poll of the AIDA manager: merged results plus progress."""

    tree: ObjectTree
    progress: MergeProgress


class IPAClient:
    """Headless analysis client bound to one simulated grid site.

    Parameters
    ----------
    site:
        The :class:`~repro.core.site.GridSite` to talk to.
    credential:
        The user's identity credential (from
        :meth:`~repro.core.site.GridSite.enroll_user`).
    client_id:
        Name this client presents to the manager's poll-coalescing
        layer (per-client sequence cursors).  Defaults to the
        credential's subject, which is unique per enrolled user.
    """

    def __init__(
        self, site, credential: Credential, client_id: Optional[str] = None
    ) -> None:
        self.site = site
        self.env = site.env
        self.client_id = client_id or credential.subject
        self.proxy_plugin = GridProxyPlugin(site.env, credential)
        self.catalog_plugin = DatasetCatalogPlugin(site.container)
        self.data_plugin = RemoteDataPlugin(
            site.container, client_id=self.client_id
        )
        self.session: Optional[SessionInfo] = None
        self.staged: Optional[StagedDataset] = None

    # -- step 1-3: proxy + session ---------------------------------------
    def obtain_proxy(self, lifetime: float = 12 * 3600.0) -> Credential:
        """Create the Grid proxy (no service interaction; instantaneous)."""
        return self.proxy_plugin.obtain_proxy(lifetime)

    def connect(
        self,
        n_engines: Optional[int] = None,
        dataset_hint: Optional[str] = None,
        admission_retry: Optional[RetryPolicy] = None,
    ):
        """Generator op: authenticate and create the session (steps 2-3).

        *dataset_hint* names the dataset this session will analyze, so
        engine placement can prefer workers already caching its parts.

        When the site refuses the session with
        :class:`~repro.services.envelope.RetryAfter` backpressure
        (admission queue full, service queue full), *admission_retry*
        controls client back-off: each attempt waits at least the
        server's ``retry_after`` hint, never less than the policy's own
        delay.  ``None`` (the default) propagates the refusal to the
        caller on the first attempt.
        """
        attempts = 1 if admission_retry is None else admission_retry.max_attempts
        last_refusal: Optional[RetryAfter] = None
        for attempt in range(attempts):
            try:
                info: SessionInfo = yield self.site.container.call(
                    "control",
                    "create_session",
                    {
                        "client_chain": self.proxy_plugin.chain,
                        "n_engines": n_engines,
                        "dataset_hint": dataset_hint,
                    },
                )
            except RetryAfter as fault:
                last_refusal = fault
                if admission_retry is None or not admission_retry.should_retry(
                    attempt
                ):
                    break
                # Honor the server's drain estimate, but keep the
                # policy's exponential floor so a tiny hint cannot
                # stampede the site.
                yield self.env.timeout(
                    max(
                        fault.retry_after,
                        admission_retry.delay(attempt, salt=self.client_id),
                    )
                )
                continue
            self.session = info
            self.data_plugin.bind(info.session_id, info.token)
            return info
        raise last_refusal

    def obtain_proxy_and_connect(
        self,
        n_engines: Optional[int] = None,
        dataset_hint: Optional[str] = None,
    ):
        """Generator op: steps 1-3 in one go."""
        self.obtain_proxy()
        info = yield from self.connect(n_engines, dataset_hint=dataset_hint)
        return info

    def _require_session(self) -> SessionInfo:
        if self.session is None:
            raise ClientError("not connected; call connect() first")
        return self.session

    def reconnect(
        self,
        session_id: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        """Generator op: re-attach to a session after a service restart.

        Retries under *retry* (default :data:`RECONNECT_POLICY`) while the
        manager services are still down — a down service surfaces either
        as :class:`~repro.resilience.faults.ServiceUnavailable` from the
        handler or as a transport :class:`Fault` (the session token is
        revoked by the crash).  A :exc:`SessionError` for a closed or
        unknown session propagates immediately: retrying cannot fix it.

        Returns the fresh :class:`SessionInfo` and re-binds the polling
        plugin to its token.
        """
        if session_id is None:
            session_id = self._require_session().session_id
        policy = retry if retry is not None else RECONNECT_POLICY
        last_error: Optional[BaseException] = None
        for attempt in range(policy.max_attempts):
            try:
                info: SessionInfo = yield self.site.container.call(
                    "control",
                    "reconnect_session",
                    {
                        "client_chain": self.proxy_plugin.chain,
                        "session_id": session_id,
                    },
                )
                self.session = info
                self.data_plugin.bind(info.session_id, info.token)
                return info
            except (ServiceUnavailable, Fault) as exc:
                last_error = exc
                if not policy.should_retry(attempt):
                    break
                yield self.env.timeout(policy.delay(attempt, salt=session_id))
        raise ClientError(
            f"could not reconnect to session {session_id!r}: {last_error}"
        )

    # -- step 4: dataset -------------------------------------------------
    def browse_catalog(self, path: str = "/"):
        """Generator op: catalog directory listing (the chooser, Fig. 3)."""
        listing = yield from self.catalog_plugin.browse(path)
        return listing

    def search_catalog(self, query: str):
        """Generator op: metadata query over the catalog."""
        hits = yield from self.catalog_plugin.search(query)
        return hits

    def select_dataset(
        self,
        dataset_id: str,
        strategy: str = "by-events",
        streams: Optional[int] = None,
    ):
        """Generator op: stage the dataset for this session (steps 4-5)."""
        info = self._require_session()
        staged: StagedDataset = yield self.site.container.call(
            "session",
            "add_dataset",
            {
                "session_id": info.session_id,
                "dataset_id": dataset_id,
                "strategy": strategy,
                "streams": streams,
            },
        )
        self.staged = staged
        return staged

    # -- step 6: code ------------------------------------------------------
    def upload_code(
        self,
        source: str,
        class_name: Optional[str] = None,
        parameters: Optional[dict] = None,
    ):
        """Generator op: stage analysis code to the engines."""
        info = self._require_session()
        bundle = CodeBundle(
            source=source, class_name=class_name, parameters=dict(parameters or {})
        )
        duration = yield self.site.container.call(
            "session",
            "stage_code",
            {"session_id": info.session_id, "bundle": bundle},
        )
        return duration

    def reload_code(
        self,
        source: Optional[str] = None,
        parameters: Optional[dict] = None,
    ):
        """Generator op: dynamic reload with new source/parameters (§3.6)."""
        info = self._require_session()
        duration = yield self.site.container.call(
            "session",
            "reload_code",
            {
                "session_id": info.session_id,
                "source": source,
                "parameters": parameters,
            },
        )
        return duration

    # -- run controls ------------------------------------------------------
    def _control(self, verb: str, argument=None):
        info = self._require_session()
        count = yield self.site.container.call(
            "session",
            "control",
            {"session_id": info.session_id, "verb": verb, "argument": argument},
        )
        return count

    def run(self):
        """Generator op: start/resume the analysis on all engines."""
        return (yield from self._control(Command.RUN))

    def pause(self):
        """Generator op: pause all engines after their current chunk."""
        return (yield from self._control(Command.PAUSE))

    def stop(self):
        """Generator op: stop the run on all engines."""
        return (yield from self._control(Command.STOP))

    def rewind(self):
        """Generator op: reset all engines to event 0, clearing results."""
        return (yield from self._control(Command.REWIND))

    def step(self, n_events: int):
        """Generator op: run exactly *n_events* per engine, then pause."""
        return (yield from self._control(Command.STEP, n_events))

    # -- step 7: results -------------------------------------------------
    def poll(self) -> "PollResult":
        """Generator op: one RMI poll of the merged results."""
        self._require_session()
        tree, progress = yield from self.data_plugin.poll()
        return PollResult(tree=tree, progress=progress)

    def wait_for_completion(
        self,
        poll_interval: float = 5.0,
        timeout: Optional[float] = None,
        reconnect: bool = False,
    ):
        """Generator op: poll until every engine reported final results.

        Returns the last :class:`PollResult`.  Raises :class:`ClientError`
        on timeout.  With ``reconnect=True`` a manager-service outage
        mid-wait (the poll raises ``ServiceUnavailable`` or a transport
        ``Fault`` for the revoked token) triggers
        :meth:`reconnect` with backoff and the wait resumes — the paper's
        disconnect/resume workflow, driven by the durable session layer.
        """
        info = self._require_session()
        deadline = None if timeout is None else self.env.now + timeout
        while True:
            try:
                result = yield from self.poll()
                progress = result.progress
                # Under failure recovery the session service shrinks/grows
                # the expected-engine count as members die and spares join;
                # fall back to the creation-time count when not tracking.
                expected = (
                    progress.expected_engines
                    if progress.expected_engines is not None
                    else info.n_engines
                )
                if progress.engines_reporting >= expected and progress.complete:
                    return result
                # Fail fast if an analysis crashed (node failures are
                # excluded: the session service recovers those by
                # re-dispatch).
                summary = yield from self.status()
            except (ServiceUnavailable, Fault):
                if not reconnect:
                    raise
                info = yield from self.reconnect(info.session_id)
                yield self.env.timeout(poll_interval)
                continue
            if summary["failures"]:
                failure = summary["failures"][0]
                raise ClientError(
                    f"engine job {failure['job']!r} failed: {failure['error']}"
                )
            if summary.get("unrecoverable"):
                raise ClientError(
                    "session is unrecoverable: every engine died and no "
                    "spare worker is available"
                )
            if deadline is not None and self.env.now >= deadline:
                raise ClientError(
                    f"timed out waiting for completion "
                    f"({progress.final_engines}/{expected} final)"
                )
            yield self.env.timeout(poll_interval)

    def status(self):
        """Generator op: session status summary from the session service."""
        info = self._require_session()
        summary = yield self.site.container.call(
            "session", "status", {"session_id": info.session_id}
        )
        return summary

    # -- shutdown ------------------------------------------------------------
    def close(self):
        """Generator op: close the session and release every engine."""
        info = self._require_session()
        result = yield self.site.container.call(
            "control", "close_session", {"session_id": info.session_id}
        )
        self.session = None
        self.staged = None
        return result
