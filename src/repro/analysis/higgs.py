"""The Higgs-boson search: dijet invariant mass over background.

Reconstructs e+e- -> ZH -> four jets: among the three ways to pair four
jets into two dijets, pick the pairing whose better dijet is closest to the
Z mass; the *other* dijet is the Higgs candidate.  Signal events pile up at
m_H = 120 GeV over the WW / ZZ / qq combinatorial background.

Outputs (under ``/higgs``): the candidate mass spectrum (the headline
histogram of Fig. 4), the Z-candidate mass, jet multiplicity, total visible
energy, and a 2-D Z-vs-H mass correlation.

Fully vectorized: four-jet events of a chunk are processed as (n, 4)
arrays; no per-event Python loop.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.aida.hist1d import Histogram1D
from repro.aida.hist2d import Histogram2D
from repro.aida.tree import ObjectTree
from repro.dataset.events import EventBatch
from repro.dataset.physics import MASS_Z
from repro.engine.base import Analysis

#: The three ways to split jets {0,1,2,3} into two pairs.
_PAIRINGS: Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...] = (
    ((0, 1), (2, 3)),
    ((0, 2), (1, 3)),
    ((0, 3), (1, 2)),
)


class HiggsSearchAnalysis(Analysis):
    """Dijet Higgs search over four-jet events.

    Parameters
    ----------
    mass_bins, mass_low, mass_high:
        Binning of the candidate-mass histograms.
    min_visible_energy:
        Selection cut on the event's total visible energy in GeV (rejects
        radiative-return qq background); this is the knob the interactive
        fine-tuning example adjusts.
    """

    name = "higgs-search"

    def __init__(
        self,
        mass_bins: int = 60,
        mass_low: float = 40.0,
        mass_high: float = 200.0,
        min_visible_energy: float = 0.0,
    ) -> None:
        self.mass_bins = int(mass_bins)
        self.mass_low = float(mass_low)
        self.mass_high = float(mass_high)
        self.min_visible_energy = float(min_visible_energy)

    def start(self, tree: ObjectTree) -> None:
        """Create the output histograms."""
        tree.put(
            "/higgs/dijet_mass",
            Histogram1D(
                "dijet_mass",
                "Higgs candidate dijet mass [GeV]",
                bins=self.mass_bins,
                lower=self.mass_low,
                upper=self.mass_high,
            ),
        )
        tree.put(
            "/higgs/z_mass",
            Histogram1D(
                "z_mass",
                "Z candidate dijet mass [GeV]",
                bins=self.mass_bins,
                lower=self.mass_low,
                upper=self.mass_high,
            ),
        )
        tree.put(
            "/higgs/n_jets",
            Histogram1D("n_jets", "Jet multiplicity", bins=10, lower=-0.5, upper=9.5),
        )
        tree.put(
            "/higgs/visible_energy",
            Histogram1D(
                "visible_energy",
                "Total visible energy [GeV]",
                bins=60,
                lower=0.0,
                upper=600.0,
            ),
        )
        tree.put(
            "/higgs/mass_correlation",
            Histogram2D(
                "mass_correlation",
                "Z mass vs Higgs candidate mass",
                x_bins=40,
                x_lower=self.mass_low,
                x_upper=self.mass_high,
                y_bins=40,
                y_lower=self.mass_low,
                y_upper=self.mass_high,
            ),
        )

    def process_batch(self, batch: EventBatch, tree: ObjectTree) -> None:
        """Vectorized processing of one chunk of events."""
        if len(batch) == 0:
            return
        counts = np.diff(batch.offsets)
        tree.get("/higgs/n_jets").fill_array(counts.astype(float))

        # Visible energy per event: sum particle energies within offsets.
        visible = np.add.reduceat(
            batch.e, batch.offsets[:-1].astype(int)
        ) if batch.n_particles else np.zeros(len(batch))
        # reduceat misbehaves for zero-particle events; recompute safely.
        if np.any(counts == 0):
            visible = np.array(
                [
                    batch.e[batch.offsets[i]:batch.offsets[i + 1]].sum()
                    for i in range(len(batch))
                ]
            )
        tree.get("/higgs/visible_energy").fill_array(visible)

        selected = (counts == 4) & (visible >= self.min_visible_energy)
        if not np.any(selected):
            return
        indices = np.nonzero(selected)[0]
        starts = batch.offsets[indices].astype(int)
        # Gather the four jets of each selected event: shape (n, 4).
        gather = starts[:, None] + np.arange(4)[None, :]
        e = batch.e[gather]
        px = batch.px[gather]
        py = batch.py[gather]
        pz = batch.pz[gather]

        def dijet_mass(a: int, b: int) -> np.ndarray:
            se = e[:, a] + e[:, b]
            sx = px[:, a] + px[:, b]
            sy = py[:, a] + py[:, b]
            sz = pz[:, a] + pz[:, b]
            return np.sqrt(np.clip(se * se - sx * sx - sy * sy - sz * sz, 0, None))

        # All six dijet masses, organized per pairing.
        pair_masses = np.empty((len(indices), 3, 2))
        for p_index, (pair_a, pair_b) in enumerate(_PAIRINGS):
            pair_masses[:, p_index, 0] = dijet_mass(*pair_a)
            pair_masses[:, p_index, 1] = dijet_mass(*pair_b)

        # For each pairing, which of its two dijets is closer to the Z?
        dz = np.abs(pair_masses - MASS_Z)
        closer = np.argmin(dz, axis=2)  # (n, 3)
        best_dz = np.take_along_axis(dz, closer[:, :, None], axis=2)[:, :, 0]
        # Pick the pairing with the best Z candidate.
        best_pairing = np.argmin(best_dz, axis=1)  # (n,)
        row = np.arange(len(indices))
        z_slot = closer[row, best_pairing]
        z_mass = pair_masses[row, best_pairing, z_slot]
        h_mass = pair_masses[row, best_pairing, 1 - z_slot]

        tree.get("/higgs/z_mass").fill_array(z_mass)
        tree.get("/higgs/dijet_mass").fill_array(h_mass)
        tree.get("/higgs/mass_correlation").fill_array(h_mass, z_mass)


#: Source form of this analysis, stageable through the code loader exactly
#: like user-written code (uses only the sandbox-provided names).
SOURCE = '''
class StagedHiggsSearch(Analysis):
    """Dijet Higgs search (staged-source edition)."""

    name = "higgs-search"

    def __init__(self, min_visible_energy=0.0, mass_bins=60,
                 mass_low=40.0, mass_high=200.0):
        self.min_visible_energy = float(min_visible_energy)
        self.mass_bins = int(mass_bins)
        self.mass_low = float(mass_low)
        self.mass_high = float(mass_high)

    def start(self, tree):
        tree.put("/higgs/dijet_mass", Histogram1D(
            "dijet_mass", "Higgs candidate dijet mass [GeV]",
            bins=self.mass_bins, lower=self.mass_low, upper=self.mass_high))
        tree.put("/higgs/z_mass", Histogram1D(
            "z_mass", "Z candidate dijet mass [GeV]",
            bins=self.mass_bins, lower=self.mass_low, upper=self.mass_high))
        tree.put("/higgs/visible_energy", Histogram1D(
            "visible_energy", "Total visible energy [GeV]",
            bins=60, lower=0.0, upper=600.0))

    def process_batch(self, batch, tree):
        if len(batch) == 0:
            return
        counts = np.diff(batch.offsets)
        visible = np.array([
            batch.e[batch.offsets[i]:batch.offsets[i + 1]].sum()
            for i in range(len(batch))
        ])
        tree.get("/higgs/visible_energy").fill_array(visible)
        selected = (counts == 4) & (visible >= self.min_visible_energy)
        if not np.any(selected):
            return
        starts = batch.offsets[np.nonzero(selected)[0]].astype(int)
        gather = starts[:, None] + np.arange(4)[None, :]
        e, px = batch.e[gather], batch.px[gather]
        py, pz = batch.py[gather], batch.pz[gather]

        def dijet(a, b):
            se = e[:, a] + e[:, b]
            sx = px[:, a] + px[:, b]
            sy = py[:, a] + py[:, b]
            sz = pz[:, a] + pz[:, b]
            return np.sqrt(np.clip(se * se - sx * sx - sy * sy - sz * sz, 0, None))

        pairings = (((0, 1), (2, 3)), ((0, 2), (1, 3)), ((0, 3), (1, 2)))
        masses = np.stack(
            [np.stack([dijet(*pa), dijet(*pb)], axis=1) for pa, pb in pairings],
            axis=1,
        )
        dz = np.abs(masses - 91.1876)
        closer = np.argmin(dz, axis=2)
        best_dz = np.take_along_axis(dz, closer[:, :, None], axis=2)[:, :, 0]
        best = np.argmin(best_dz, axis=1)
        row = np.arange(masses.shape[0])
        z_slot = closer[row, best]
        tree.get("/higgs/z_mass").fill_array(masses[row, best, z_slot])
        tree.get("/higgs/dijet_mass").fill_array(masses[row, best, 1 - z_slot])
'''
