"""Sample analyses shipped with the framework.

These are the "user code" of the reproduction:

* :class:`~repro.analysis.higgs.HiggsSearchAnalysis` — the paper's workload
  ("a Java algorithm that looks for Higgs Bosons in simulated Linear
  Collider data", §4), reimplemented vectorized;
* :class:`~repro.analysis.counting.EventCounterAnalysis` — minimal
  per-process bookkeeping;
* :class:`~repro.analysis.cuts.SelectionCutAnalysis` — a tunable-cut
  analysis used by the interactive fine-tuning example;
* :mod:`repro.analysis.trading` — a stock-trade VWAP analysis demonstrating
  the paper's claim that the framework "can easily be adopted for
  applications in other fields" (§6).

Each module also exposes its source as a ``SOURCE`` string so examples and
tests can stage it through the code loader exactly like user-written code.
"""

from repro.analysis.counting import EventCounterAnalysis
from repro.analysis.cuts import SelectionCutAnalysis
from repro.analysis.higgs import HiggsSearchAnalysis
from repro.analysis.trading import TradingRecordsAnalysis

__all__ = [
    "EventCounterAnalysis",
    "HiggsSearchAnalysis",
    "SelectionCutAnalysis",
    "TradingRecordsAnalysis",
]
