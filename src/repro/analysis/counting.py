"""Minimal per-process bookkeeping analysis."""

from __future__ import annotations

import numpy as np

from repro.aida.hist1d import Histogram1D
from repro.aida.profile import Profile1D
from repro.aida.tree import ObjectTree
from repro.dataset.events import PROCESS_CODES, EventBatch
from repro.engine.base import Analysis


class EventCounterAnalysis(Analysis):
    """Counts events per process and tracks basic spectra.

    Outputs under ``/counts``: a process-code histogram (ground truth
    labels, useful for validating generator mixtures end to end through the
    whole grid pipeline), the particle multiplicity, the leading-particle
    energy spectrum, and a multiplicity-vs-energy profile.
    """

    name = "event-counter"

    def start(self, tree: ObjectTree) -> None:
        """Create the bookkeeping histograms."""
        n_codes = len(PROCESS_CODES)
        tree.put(
            "/counts/process",
            Histogram1D(
                "process", "Process code", bins=n_codes, lower=-0.5, upper=n_codes - 0.5
            ),
        )
        tree.put(
            "/counts/multiplicity",
            Histogram1D(
                "multiplicity", "Particles per event", bins=12, lower=-0.5, upper=11.5
            ),
        )
        tree.put(
            "/counts/leading_energy",
            Histogram1D(
                "leading_energy", "Leading particle energy [GeV]",
                bins=50, lower=0.0, upper=400.0,
            ),
        )
        tree.put(
            "/counts/mult_vs_energy",
            Profile1D(
                "mult_vs_energy",
                "Multiplicity vs leading energy",
                bins=20,
                lower=0.0,
                upper=400.0,
            ),
        )

    def process_batch(self, batch: EventBatch, tree: ObjectTree) -> None:
        """Vectorized bookkeeping for one chunk."""
        if len(batch) == 0:
            return
        tree.get("/counts/process").fill_array(batch.process.astype(float))
        counts = np.diff(batch.offsets).astype(float)
        tree.get("/counts/multiplicity").fill_array(counts)
        leading = np.array(
            [
                batch.e[batch.offsets[i]:batch.offsets[i + 1]].max()
                if counts[i] > 0
                else 0.0
                for i in range(len(batch))
            ]
        )
        tree.get("/counts/leading_energy").fill_array(leading)
        tree.get("/counts/mult_vs_energy").fill_array(leading, counts)


#: Stageable source form of the counter (sandbox-compatible).
SOURCE = '''
class StagedEventCounter(Analysis):
    """Counts events and particle multiplicities."""

    name = "event-counter"

    def start(self, tree):
        tree.put("/counts/process", Histogram1D(
            "process", "Process code", bins=4, lower=-0.5, upper=3.5))
        tree.put("/counts/multiplicity", Histogram1D(
            "multiplicity", "Particles per event", bins=12, lower=-0.5, upper=11.5))

    def process_batch(self, batch, tree):
        if len(batch) == 0:
            return
        tree.get("/counts/process").fill_array(batch.process.astype(float))
        tree.get("/counts/multiplicity").fill_array(
            np.diff(batch.offsets).astype(float))
'''
