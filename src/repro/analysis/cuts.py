"""Tunable selection-cut analysis for the interactive fine-tuning loop.

The point of interactivity (§1) is "to fine tune an analysis ... while
making incremental changes".  This analysis exposes its cut values as
constructor parameters, so the client can stop the run, adjust a cut,
reload, rewind, and rerun — the exact workflow of
``examples/interactive_rerun.py``.
"""

from __future__ import annotations

import numpy as np

from repro.aida.hist1d import Histogram1D
from repro.aida.tree import ObjectTree
from repro.dataset.events import EventBatch
from repro.engine.base import Analysis


class SelectionCutAnalysis(Analysis):
    """Pass/fail accounting for an energy-window selection.

    Parameters
    ----------
    min_energy, max_energy:
        Window on the event's total visible energy in GeV.
    min_multiplicity:
        Minimum particle count.
    """

    name = "selection-cuts"

    def __init__(
        self,
        min_energy: float = 0.0,
        max_energy: float = float("inf"),
        min_multiplicity: int = 0,
    ) -> None:
        if min_energy > max_energy:
            raise ValueError("min_energy must be <= max_energy")
        self.min_energy = float(min_energy)
        self.max_energy = float(max_energy)
        self.min_multiplicity = int(min_multiplicity)

    def start(self, tree: ObjectTree) -> None:
        """Create the pass/fail and spectrum histograms."""
        tree.put(
            "/cuts/decision",
            Histogram1D("decision", "0=fail 1=pass", bins=2, lower=-0.5, upper=1.5),
        )
        tree.put(
            "/cuts/energy_pass",
            Histogram1D(
                "energy_pass", "Visible energy (passing) [GeV]",
                bins=60, lower=0.0, upper=600.0,
            ),
        )
        tree.put(
            "/cuts/energy_fail",
            Histogram1D(
                "energy_fail", "Visible energy (failing) [GeV]",
                bins=60, lower=0.0, upper=600.0,
            ),
        )

    def process_batch(self, batch: EventBatch, tree: ObjectTree) -> None:
        """Vectorized pass/fail classification of one chunk."""
        if len(batch) == 0:
            return
        counts = np.diff(batch.offsets)
        visible = np.array(
            [
                batch.e[batch.offsets[i]:batch.offsets[i + 1]].sum()
                for i in range(len(batch))
            ]
        )
        passing = (
            (visible >= self.min_energy)
            & (visible <= self.max_energy)
            & (counts >= self.min_multiplicity)
        )
        tree.get("/cuts/decision").fill_array(passing.astype(float))
        tree.get("/cuts/energy_pass").fill_array(visible[passing])
        tree.get("/cuts/energy_fail").fill_array(visible[~passing])

    def efficiency(self, tree: ObjectTree) -> float:
        """Fraction of processed events passing the cuts (NaN if none)."""
        decision = tree.get("/cuts/decision")
        total = decision.entries
        if total == 0:
            return float("nan")
        return decision.bin_height(1) / total


#: Stageable source form with the cut as a parameter; the interactive
#: example re-stages this with different ``min_energy`` values.
SOURCE = '''
class StagedSelectionCuts(Analysis):
    """Energy-window selection with tunable cuts."""

    name = "selection-cuts"

    def __init__(self, min_energy=0.0, max_energy=1e12, min_multiplicity=0):
        self.min_energy = float(min_energy)
        self.max_energy = float(max_energy)
        self.min_multiplicity = int(min_multiplicity)

    def start(self, tree):
        tree.put("/cuts/decision", Histogram1D(
            "decision", "0=fail 1=pass", bins=2, lower=-0.5, upper=1.5))
        tree.put("/cuts/energy_pass", Histogram1D(
            "energy_pass", "Visible energy (passing) [GeV]",
            bins=60, lower=0.0, upper=600.0))

    def process_batch(self, batch, tree):
        if len(batch) == 0:
            return
        counts = np.diff(batch.offsets)
        visible = np.array([
            batch.e[batch.offsets[i]:batch.offsets[i + 1]].sum()
            for i in range(len(batch))
        ])
        passing = ((visible >= self.min_energy)
                   & (visible <= self.max_energy)
                   & (counts >= self.min_multiplicity))
        tree.get("/cuts/decision").fill_array(passing.astype(float))
        tree.get("/cuts/energy_pass").fill_array(visible[passing])
'''
