"""Stock-trading records analysis: the "other fields" demonstration.

The paper claims the framework "is not specific to any particular science
application, although it does require record-based data" and names "stock
trading records in business" as an example domain (§1, §6).  This module
backs that claim end to end: a generator that encodes trading days as
records in the *same* event container (one record per day; one "particle"
per trade with price and volume in the kinematic slots), and an analysis
producing VWAP and return histograms through the identical engine/merge
pipeline.

Field mapping (documented, deliberate):

=============  ===========================
Event field    Trading meaning
=============  ===========================
``event_id``   day number
``process``    instrument id
``pdg``        trade side (+1 buy, -1 sell)
``e``          trade price
``px``         trade volume (shares)
=============  ===========================
"""

from __future__ import annotations

import numpy as np

from repro.aida.hist1d import Histogram1D
from repro.aida.profile import Profile1D
from repro.aida.tree import ObjectTree
from repro.dataset.events import EventBatch
from repro.engine.base import Analysis


def _segment_sums(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Per-day sums of *values* over ``offsets`` segments, vectorized.

    ``np.add.reduceat`` quirks handled here: an empty segment returns
    ``values[start]`` instead of 0 (masked out via *counts*), and a
    trailing empty segment's start may equal ``len(values)`` — padding
    one zero keeps every index valid without disturbing the neighbouring
    segment boundaries (clamping would).
    """
    values = values.astype(float, copy=False)
    if values.size == 0 or counts.size == 0:
        return np.zeros(counts.shape, dtype=float)
    if starts[-1] >= values.size:
        values = np.concatenate([values, np.zeros(1)])
    sums = np.add.reduceat(values, starts)
    return np.where(counts > 0, sums, 0.0)


def generate_trading_days(
    n_days: int,
    trades_per_day: int = 50,
    start_price: float = 100.0,
    daily_volatility: float = 0.02,
    seed: int = 0,
) -> EventBatch:
    """Generate a synthetic geometric-random-walk trading dataset.

    One record per day; each day holds *trades_per_day* trades whose prices
    jitter intraday around the day's level.
    """
    if n_days < 0:
        raise ValueError("n_days must be >= 0")
    if trades_per_day < 1:
        raise ValueError("trades_per_day must be >= 1")
    rng = np.random.default_rng(seed)
    daily_returns = rng.normal(0.0, daily_volatility, n_days)
    levels = start_price * np.exp(np.cumsum(daily_returns))
    n_trades = n_days * trades_per_day
    prices = np.repeat(levels, trades_per_day) * np.exp(
        rng.normal(0.0, daily_volatility / 4, n_trades)
    )
    volumes = rng.lognormal(mean=4.0, sigma=1.0, size=n_trades)
    sides = rng.choice([-1, 1], size=n_trades)
    offsets = np.arange(n_days + 1, dtype=np.int64) * trades_per_day
    zeros = np.zeros(n_trades)
    return EventBatch(
        event_ids=np.arange(n_days),
        process=np.zeros(n_days, dtype=np.int16),
        weights=np.ones(n_days),
        offsets=offsets,
        pdg=sides.astype(np.int32),
        e=prices,
        px=volumes,
        py=zeros,
        pz=zeros,
    )


class TradingRecordsAnalysis(Analysis):
    """Per-day VWAP, volume and daily-return spectra.

    Outputs under ``/trading``: the VWAP-by-day profile, daily traded
    volume, daily return distribution (close-to-close on VWAP), and the
    buy/sell imbalance.
    """

    name = "trading-records"

    def __init__(self, return_bins: int = 50, return_range: float = 0.1) -> None:
        self.return_bins = int(return_bins)
        self.return_range = float(return_range)
        self._last_vwap: float | None = None

    def start(self, tree: ObjectTree) -> None:
        """Create the trading histograms."""
        tree.put(
            "/trading/vwap_by_day",
            Profile1D("vwap_by_day", "VWAP by day", bins=100, lower=0, upper=5000),
        )
        tree.put(
            "/trading/daily_volume",
            Histogram1D(
                "daily_volume", "Daily traded volume", bins=50, lower=0, upper=20000
            ),
        )
        tree.put(
            "/trading/daily_return",
            Histogram1D(
                "daily_return",
                "Daily VWAP return",
                bins=self.return_bins,
                lower=-self.return_range,
                upper=self.return_range,
            ),
        )
        tree.put(
            "/trading/imbalance",
            Histogram1D(
                "imbalance", "Buy-sell volume imbalance", bins=40, lower=-1, upper=1
            ),
        )
        self._last_vwap = None

    def process_batch(self, batch: EventBatch, tree: ObjectTree) -> None:
        """Vectorized per-day aggregation of one chunk of days.

        All per-day reductions run as ``np.add.reduceat`` segment sums
        over ``offsets`` — no Python loop over days.
        """
        if len(batch) == 0:
            return
        starts = batch.offsets[:-1].astype(np.int64)
        counts = batch.offsets[1:].astype(np.int64) - starts
        n_days = len(batch)
        volumes = _segment_sums(batch.px, starts, counts)
        notionals = _segment_sums(batch.e * batch.px, starts, counts)
        signed = _segment_sums(batch.pdg * batch.px, starts, counts)
        traded = volumes > 0
        vwaps = np.full(n_days, np.nan)
        np.divide(notionals, volumes, out=vwaps, where=traded)
        imbalance = np.zeros(n_days)
        np.divide(signed, volumes, out=imbalance, where=traded)
        tree.get("/trading/vwap_by_day").fill_array(
            batch.event_ids.astype(float), vwaps
        )
        tree.get("/trading/daily_volume").fill_array(volumes)
        tree.get("/trading/imbalance").fill_array(imbalance)

        # Close-to-close returns: each day's VWAP against the previous
        # day's, carrying the last VWAP across batch boundaries.  A
        # no-trade (NaN) day yields no return and breaks the chain for
        # the following day, exactly as the sequential fold did.
        last = np.nan if self._last_vwap is None else self._last_vwap
        previous = np.concatenate(([last], vwaps[:-1]))
        valid = np.isfinite(vwaps) & (previous > 0)
        tree.get("/trading/daily_return").fill_array(
            vwaps[valid] / previous[valid] - 1.0
        )
        self._last_vwap = float(vwaps[-1])


#: Stageable source form (sandbox-compatible).
SOURCE = '''
class StagedTradingAnalysis(Analysis):
    """Per-day VWAP and volume from trading records."""

    name = "trading-records"

    def start(self, tree):
        tree.put("/trading/vwap_by_day", Profile1D(
            "vwap_by_day", "VWAP by day", bins=100, lower=0, upper=5000))
        tree.put("/trading/daily_volume", Histogram1D(
            "daily_volume", "Daily traded volume", bins=50, lower=0, upper=20000))

    def process_batch(self, batch, tree):
        if len(batch) == 0:
            return
        starts = batch.offsets[:-1].astype(np.int64)
        counts = batch.offsets[1:].astype(np.int64) - starts

        def segment_sums(values):
            values = values.astype(float, copy=False)
            if values.size == 0 or counts.size == 0:
                return np.zeros(counts.shape, dtype=float)
            if starts[-1] >= values.size:
                values = np.concatenate([values, np.zeros(1)])
            sums = np.add.reduceat(values, starts)
            return np.where(counts > 0, sums, 0.0)

        volumes = segment_sums(batch.px)
        notionals = segment_sums(batch.e * batch.px)
        traded = volumes > 0
        vwaps = np.full(len(batch), np.nan)
        np.divide(notionals, volumes, out=vwaps, where=traded)
        tree.get("/trading/vwap_by_day").fill_array(
            batch.event_ids[traded].astype(float), vwaps[traded])
        tree.get("/trading/daily_volume").fill_array(volumes)
'''
