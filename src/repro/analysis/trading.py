"""Stock-trading records analysis: the "other fields" demonstration.

The paper claims the framework "is not specific to any particular science
application, although it does require record-based data" and names "stock
trading records in business" as an example domain (§1, §6).  This module
backs that claim end to end: a generator that encodes trading days as
records in the *same* event container (one record per day; one "particle"
per trade with price and volume in the kinematic slots), and an analysis
producing VWAP and return histograms through the identical engine/merge
pipeline.

Field mapping (documented, deliberate):

=============  ===========================
Event field    Trading meaning
=============  ===========================
``event_id``   day number
``process``    instrument id
``pdg``        trade side (+1 buy, -1 sell)
``e``          trade price
``px``         trade volume (shares)
=============  ===========================
"""

from __future__ import annotations

import numpy as np

from repro.aida.hist1d import Histogram1D
from repro.aida.profile import Profile1D
from repro.aida.tree import ObjectTree
from repro.dataset.events import EventBatch
from repro.engine.base import Analysis


def generate_trading_days(
    n_days: int,
    trades_per_day: int = 50,
    start_price: float = 100.0,
    daily_volatility: float = 0.02,
    seed: int = 0,
) -> EventBatch:
    """Generate a synthetic geometric-random-walk trading dataset.

    One record per day; each day holds *trades_per_day* trades whose prices
    jitter intraday around the day's level.
    """
    if n_days < 0:
        raise ValueError("n_days must be >= 0")
    if trades_per_day < 1:
        raise ValueError("trades_per_day must be >= 1")
    rng = np.random.default_rng(seed)
    daily_returns = rng.normal(0.0, daily_volatility, n_days)
    levels = start_price * np.exp(np.cumsum(daily_returns))
    n_trades = n_days * trades_per_day
    prices = np.repeat(levels, trades_per_day) * np.exp(
        rng.normal(0.0, daily_volatility / 4, n_trades)
    )
    volumes = rng.lognormal(mean=4.0, sigma=1.0, size=n_trades)
    sides = rng.choice([-1, 1], size=n_trades)
    offsets = np.arange(n_days + 1, dtype=np.int64) * trades_per_day
    zeros = np.zeros(n_trades)
    return EventBatch(
        event_ids=np.arange(n_days),
        process=np.zeros(n_days, dtype=np.int16),
        weights=np.ones(n_days),
        offsets=offsets,
        pdg=sides.astype(np.int32),
        e=prices,
        px=volumes,
        py=zeros,
        pz=zeros,
    )


class TradingRecordsAnalysis(Analysis):
    """Per-day VWAP, volume and daily-return spectra.

    Outputs under ``/trading``: the VWAP-by-day profile, daily traded
    volume, daily return distribution (close-to-close on VWAP), and the
    buy/sell imbalance.
    """

    name = "trading-records"

    def __init__(self, return_bins: int = 50, return_range: float = 0.1) -> None:
        self.return_bins = int(return_bins)
        self.return_range = float(return_range)
        self._last_vwap: float | None = None

    def start(self, tree: ObjectTree) -> None:
        """Create the trading histograms."""
        tree.put(
            "/trading/vwap_by_day",
            Profile1D("vwap_by_day", "VWAP by day", bins=100, lower=0, upper=5000),
        )
        tree.put(
            "/trading/daily_volume",
            Histogram1D(
                "daily_volume", "Daily traded volume", bins=50, lower=0, upper=20000
            ),
        )
        tree.put(
            "/trading/daily_return",
            Histogram1D(
                "daily_return",
                "Daily VWAP return",
                bins=self.return_bins,
                lower=-self.return_range,
                upper=self.return_range,
            ),
        )
        tree.put(
            "/trading/imbalance",
            Histogram1D(
                "imbalance", "Buy-sell volume imbalance", bins=40, lower=-1, upper=1
            ),
        )
        self._last_vwap = None

    def process_batch(self, batch: EventBatch, tree: ObjectTree) -> None:
        """Vectorized per-day aggregation of one chunk of days."""
        if len(batch) == 0:
            return
        starts = batch.offsets[:-1].astype(int)
        stops = batch.offsets[1:].astype(int)
        vwaps = np.empty(len(batch))
        volumes = np.empty(len(batch))
        imbalance = np.empty(len(batch))
        for i, (lo, hi) in enumerate(zip(starts, stops)):
            price = batch.e[lo:hi]
            volume = batch.px[lo:hi]
            side = batch.pdg[lo:hi]
            total = volume.sum()
            volumes[i] = total
            vwaps[i] = float(np.dot(price, volume) / total) if total else np.nan
            signed = float(np.dot(side, volume))
            imbalance[i] = signed / total if total else 0.0
        tree.get("/trading/vwap_by_day").fill_array(
            batch.event_ids.astype(float), vwaps
        )
        tree.get("/trading/daily_volume").fill_array(volumes)
        tree.get("/trading/imbalance").fill_array(imbalance)

        returns_hist = tree.get("/trading/daily_return")
        previous = self._last_vwap
        for vwap in vwaps:
            if previous is not None and np.isfinite(vwap) and previous > 0:
                returns_hist.fill(vwap / previous - 1.0)
            previous = float(vwap)
        self._last_vwap = previous


#: Stageable source form (sandbox-compatible).
SOURCE = '''
class StagedTradingAnalysis(Analysis):
    """Per-day VWAP and volume from trading records."""

    name = "trading-records"

    def start(self, tree):
        tree.put("/trading/vwap_by_day", Profile1D(
            "vwap_by_day", "VWAP by day", bins=100, lower=0, upper=5000))
        tree.put("/trading/daily_volume", Histogram1D(
            "daily_volume", "Daily traded volume", bins=50, lower=0, upper=20000))

    def process_batch(self, batch, tree):
        if len(batch) == 0:
            return
        starts = batch.offsets[:-1].astype(int)
        stops = batch.offsets[1:].astype(int)
        for i, (lo, hi) in enumerate(zip(starts, stops)):
            price = batch.e[lo:hi]
            volume = batch.px[lo:hi]
            total = volume.sum()
            if total > 0:
                vwap = float(np.dot(price, volume) / total)
                tree.get("/trading/vwap_by_day").fill(
                    float(batch.event_ids[i]), vwap)
            tree.get("/trading/daily_volume").fill(float(total))
'''
