"""Network topology and max-min fair flow model for the simulated grid.

Hosts are vertices; links are undirected edges with a bandwidth (MB/s) and a
one-way latency (s).  A *flow* (file transfer) follows the shortest route
between two hosts and is rate-limited by every link it crosses.  Concurrent
flows share link bandwidth according to the classic **max-min fairness**
(water-filling) allocation: link capacities are divided equally among
unsaturated flows, bottlenecked flows are frozen at their fair share, and the
released capacity is redistributed, until every flow is frozen.

Whenever a flow starts or finishes the allocation is recomputed and every
in-flight flow is re-timed — so a transfer that shared a WAN link with three
others automatically speeds up when they complete, exactly like TCP flows
settling into a new equilibrium.

The WAN/LAN asymmetry that drives the paper's headline result (§4: "moving
the dataset is faster for the Grid case because the movement is over a local
area network instead of a wide area network") is expressed purely through
link bandwidths; see :mod:`repro.core.config` for calibrated values.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim import Environment, Interrupt, LinkDown, Process


class NetworkError(Exception):
    """Raised for invalid topology operations or unroutable transfers."""


@dataclass(frozen=True)
class Host:
    """A network endpoint (client machine, manager, SE, worker...).

    Parameters
    ----------
    name:
        Globally unique host name.
    site:
        Label grouping hosts into administrative domains (e.g. ``"slac"``
        vs ``"desktop"``); purely informational.
    """

    name: str
    site: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Host({self.name!r})"


class Link:
    """An undirected network link with finite bandwidth and fixed latency.

    Parameters
    ----------
    name:
        Unique link name (used in route listings and stats).
    a, b:
        Endpoint host names.
    bandwidth:
        Capacity in MB/s shared by all flows crossing the link.
    latency:
        One-way propagation delay in seconds, paid once per transfer.
    per_flow_cap:
        Optional maximum rate of any single flow on this link (models a TCP
        single-stream window limit); ``None`` means uncapped.  GridFTP's
        parallel streams raise a flow's effective cap (see
        :mod:`repro.grid.transfer`).
    """

    def __init__(
        self,
        name: str,
        a: str,
        b: str,
        bandwidth: float,
        latency: float = 0.0,
        per_flow_cap: Optional[float] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link {name}: bandwidth must be > 0")
        if latency < 0:
            raise ValueError(f"link {name}: latency must be >= 0")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"link {name}: per_flow_cap must be > 0")
        self.name = name
        self.a = a
        self.b = b
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.per_flow_cap = per_flow_cap
        #: Whether the link is operational; down links carry no routes and
        #: in-flight flows crossing them fail with :class:`LinkDown`.
        self.up = True

    def endpoints(self) -> Tuple[str, str]:
        """The two host names this link connects."""
        return (self.a, self.b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Link({self.name!r}, {self.a}<->{self.b}, {self.bandwidth} MB/s)"


@dataclass(frozen=True)
class Route:
    """An ordered sequence of links between two hosts."""

    src: str
    dst: str
    links: Tuple[Link, ...]

    @property
    def latency(self) -> float:
        """Total one-way latency along the route."""
        return sum(link.latency for link in self.links)

    @property
    def bottleneck_bandwidth(self) -> float:
        """Smallest link bandwidth on the route."""
        return min(link.bandwidth for link in self.links)


@dataclass
class TransferStats:
    """Completion record returned by a finished transfer."""

    src: str
    dst: str
    size_mb: float
    started_at: float
    finished_at: float
    #: Number of max-min re-allocations this flow lived through.
    reallocations: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) transfer duration in seconds."""
        return self.finished_at - self.started_at

    @property
    def mean_rate(self) -> float:
        """Average achieved rate in MB/s."""
        if self.duration <= 0:
            return float("inf")
        return self.size_mb / self.duration


class _Flow:
    """Internal bookkeeping for one in-flight transfer."""

    __slots__ = (
        "src",
        "dst",
        "links",
        "remaining_mb",
        "rate",
        "stream_cap",
        "process",
        "stats",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        links: Tuple[Link, ...],
        size_mb: float,
        stream_cap: Optional[float],
        started_at: float,
    ) -> None:
        self.src = src
        self.dst = dst
        self.links = links
        self.remaining_mb = float(size_mb)
        self.rate = 0.0
        self.stream_cap = stream_cap
        self.process: Optional[Process] = None
        self.stats = TransferStats(src, dst, size_mb, started_at, float("nan"))

    def cap(self) -> float:
        """Per-flow rate ceiling from link caps and the stream cap."""
        cap = float("inf") if self.stream_cap is None else self.stream_cap
        for link in self.links:
            if link.per_flow_cap is not None:
                cap = min(cap, link.per_flow_cap)
        return cap


def maxmin_allocate(
    flows: List[_Flow], capacities: Dict[Link, float]
) -> Dict[_Flow, float]:
    """Compute the max-min fair rate for every flow.

    Water-filling algorithm: repeatedly find the most constrained link
    (smallest remaining-capacity / unfrozen-flow ratio), freeze its flows at
    that fair share, subtract, and continue.  Per-flow caps are honoured by
    treating a capped flow as "frozen" once its cap is the binding
    constraint.

    Parameters
    ----------
    flows:
        Active flows; each contributes its link set and optional cap.
    capacities:
        Capacity in MB/s for every link referenced by the flows.

    Returns
    -------
    dict
        Mapping flow -> allocated rate (MB/s).
    """
    rates: Dict[_Flow, float] = {}
    remaining_cap = dict(capacities)
    unfrozen: Set[_Flow] = set(flows)

    # First freeze flows whose explicit cap is below any possible fair share.
    # The main loop handles this naturally by treating caps as candidate
    # bottlenecks.
    while unfrozen:
        # Candidate fair share per link (only links with unfrozen flows).
        link_users: Dict[Link, List[_Flow]] = {}
        for flow in unfrozen:
            for link in flow.links:
                link_users.setdefault(link, []).append(flow)

        best_share = float("inf")
        best_link: Optional[Link] = None
        for link, users in link_users.items():
            share = remaining_cap[link] / len(users)
            if share < best_share:
                best_share = share
                best_link = link

        # A flow whose cap is below the smallest fair share is bound by its
        # cap, not by any link: freeze the most-capped flow first.
        capped = min(unfrozen, key=lambda f: f.cap())
        if capped.cap() < best_share:
            rate = capped.cap()
            rates[capped] = rate
            unfrozen.discard(capped)
            for link in capped.links:
                remaining_cap[link] = max(0.0, remaining_cap[link] - rate)
            continue

        if best_link is None:  # pragma: no cover - defensive
            break
        for flow in link_users[best_link]:
            rate = min(best_share, flow.cap())
            rates[flow] = rate
            unfrozen.discard(flow)
            for link in flow.links:
                remaining_cap[link] = max(0.0, remaining_cap[link] - rate)
        remaining_cap[best_link] = 0.0
    return rates


class Network:
    """A set of hosts and links with max-min fair shared transfers.

    Parameters
    ----------
    env:
        The simulation environment that drives all transfers.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._hosts: Dict[str, Host] = {}
        self._links: Dict[str, Link] = {}
        self._adjacency: Dict[str, List[Link]] = {}
        self._flows: List[_Flow] = []
        self._route_cache: Dict[Tuple[str, str], Route] = {}

    # -- topology -------------------------------------------------------
    def add_host(self, name: str, site: str = "") -> Host:
        """Register a host; names must be unique."""
        if name in self._hosts:
            raise NetworkError(f"host {name!r} already exists")
        host = Host(name, site)
        self._hosts[name] = host
        self._adjacency[name] = []
        return host

    def add_link(
        self,
        name: str,
        a: str,
        b: str,
        bandwidth: float,
        latency: float = 0.0,
        per_flow_cap: Optional[float] = None,
    ) -> Link:
        """Connect hosts *a* and *b* with a new link."""
        for endpoint in (a, b):
            if endpoint not in self._hosts:
                raise NetworkError(f"unknown host {endpoint!r}")
        if name in self._links:
            raise NetworkError(f"link {name!r} already exists")
        link = Link(name, a, b, bandwidth, latency, per_flow_cap)
        self._links[name] = link
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._route_cache.clear()
        return link

    @property
    def hosts(self) -> Dict[str, Host]:
        """All registered hosts by name."""
        return dict(self._hosts)

    @property
    def links(self) -> Dict[str, Link]:
        """All registered links by name."""
        return dict(self._links)

    def route(self, src: str, dst: str) -> Route:
        """Shortest (fewest-hops) route between two hosts (BFS).

        Raises :class:`NetworkError` if either host is unknown or no path
        exists.
        """
        for endpoint in (src, dst):
            if endpoint not in self._hosts:
                raise NetworkError(f"unknown host {endpoint!r}")
        if src == dst:
            return Route(src, dst, ())
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached

        # Breadth-first search over hosts.
        parent: Dict[str, Tuple[str, Link]] = {}
        visited = {src}
        frontier = deque([src])
        while frontier:
            here = frontier.popleft()
            for link in self._adjacency[here]:
                if not link.up:
                    continue
                there = link.b if link.a == here else link.a
                if there in visited:
                    continue
                visited.add(there)
                parent[there] = (here, link)
                if there == dst:
                    frontier.clear()
                    break
                frontier.append(there)
        if dst not in parent:
            raise NetworkError(f"no route from {src!r} to {dst!r}")

        links: List[Link] = []
        node = dst
        while node != src:
            prev, link = parent[node]
            links.append(link)
            node = prev
        route = Route(src, dst, tuple(reversed(links)))
        self._route_cache[key] = route
        return route

    def links_of(self, host: str) -> List[Link]:
        """All links attached to *host*."""
        if host not in self._hosts:
            raise NetworkError(f"unknown host {host!r}")
        return list(self._adjacency[host])

    def hosts_in_site(self, site: str) -> List[str]:
        """Names of every host carrying the given ``site`` label."""
        return [
            name for name, host in self._hosts.items() if host.site == site
        ]

    def boundary_links(self, site: str) -> List[Link]:
        """Links with exactly one endpoint inside *site*.

        These are the links a site partition severs: intra-site links stay
        up (the site keeps running internally) while every route in or out
        of the site disappears.
        """
        members = set(self.hosts_in_site(site))
        if not members:
            raise NetworkError(f"no hosts in site {site!r}")
        return [
            link
            for link in self._links.values()
            if (link.a in members) != (link.b in members)
        ]

    # -- failures -------------------------------------------------------
    def fail_link(self, name: str) -> None:
        """Take a link down.

        Routes are recomputed (the cache is cleared) and every in-flight
        flow crossing the link is failed with :class:`LinkDown`.  Idempotent.
        """
        link = self._links.get(name)
        if link is None:
            raise NetworkError(f"unknown link {name!r}")
        if not link.up:
            return
        link.up = False
        self._route_cache.clear()
        for flow in list(self._flows):
            if link in flow.links and flow.process is not None:
                if flow.process.is_alive and flow.process is not self.env.active_process:
                    flow.process.interrupt(LinkDown(link.name, "link failed"))

    def restore_link(self, name: str) -> None:
        """Bring a previously failed link back up (idempotent)."""
        link = self._links.get(name)
        if link is None:
            raise NetworkError(f"unknown link {name!r}")
        if link.up:
            return
        link.up = True
        self._route_cache.clear()

    def fail_links_of(self, host: str) -> List[str]:
        """Take down every link attached to *host*; returns their names."""
        names = [link.name for link in self.links_of(host)]
        for link_name in names:
            self.fail_link(link_name)
        return names

    def restore_links_of(self, host: str) -> List[str]:
        """Restore every link attached to *host*; returns their names."""
        names = [link.name for link in self.links_of(host)]
        for link_name in names:
            self.restore_link(link_name)
        return names

    # -- flow dynamics ----------------------------------------------------
    @property
    def active_flow_count(self) -> int:
        """Number of transfers currently in flight."""
        return len(self._flows)

    def _rebalance(self) -> None:
        """Recompute all flow rates and re-time in-flight transfers."""
        if not self._flows:
            return
        capacities = {
            link: link.bandwidth
            for flow in self._flows
            for link in flow.links
        }
        rates = maxmin_allocate(self._flows, capacities)
        for flow in self._flows:
            new_rate = rates.get(flow, 0.0)
            if flow.rate != new_rate:
                flow.rate = new_rate
                flow.stats.reallocations += 1
                if (
                    flow.process is not None
                    and flow.process.is_alive
                    and flow.process is not self.env.active_process
                ):
                    flow.process.interrupt("rate-change")

    def transfer(
        self,
        src: str,
        dst: str,
        size_mb: float,
        stream_cap: Optional[float] = None,
    ) -> Process:
        """Start a transfer of *size_mb* from *src* to *dst*.

        Returns a :class:`~repro.sim.Process` whose value on completion is a
        :class:`TransferStats`.  Yield it from another process to wait::

            stats = yield net.transfer("se", "worker-3", 29.4)

        Parameters
        ----------
        stream_cap:
            Optional per-flow rate ceiling in MB/s (single TCP stream
            behaviour); see :class:`Link.per_flow_cap` for the link-side
            equivalent.
        """
        if size_mb < 0:
            raise ValueError("size_mb must be >= 0")
        route = self.route(src, dst)
        flow = _Flow(src, dst, route.links, size_mb, stream_cap, self.env.now)
        proc = self.env.process(self._run_flow(flow, route))
        flow.process = proc
        return proc

    def _run_flow(self, flow: _Flow, route: Route):
        # Propagation delay up front (connection establishment + first byte).
        if route.latency > 0:
            yield self.env.timeout(route.latency)
        if flow.remaining_mb <= 0 or not route.links:
            # Zero-byte or same-host transfer: latency only.
            flow.stats.finished_at = self.env.now
            return flow.stats

        self._flows.append(flow)
        self._rebalance()
        try:
            while flow.remaining_mb > 1e-12:
                if flow.rate <= 0:  # pragma: no cover - defensive
                    raise NetworkError(
                        f"flow {flow.src}->{flow.dst} starved (rate 0)"
                    )
                rate_during_wait = flow.rate
                eta = flow.remaining_mb / rate_during_wait
                started = self.env.now
                try:
                    yield self.env.timeout(eta)
                    flow.remaining_mb = 0.0
                except Interrupt as intr:
                    if isinstance(intr.cause, LinkDown):
                        # A link on our route died: the transfer fails and
                        # the caller decides whether to retry over a new
                        # route.
                        raise intr.cause from None
                    # Deduct progress at the rate that was in force during
                    # the wait (flow.rate has already been updated by the
                    # rebalance that interrupted us).
                    elapsed = self.env.now - started
                    flow.remaining_mb = max(
                        0.0, flow.remaining_mb - elapsed * rate_during_wait
                    )
        finally:
            self._flows.remove(flow)
            self._rebalance()
        flow.stats.finished_at = self.env.now
        return flow.stats


def star_topology(
    env: Environment,
    center: str,
    leaves: Iterable[str],
    bandwidth: float,
    latency: float = 0.0,
    site: str = "",
) -> Network:
    """Convenience: build a star network (used heavily in tests).

    Every leaf is connected to *center* by its own link named
    ``"{center}-{leaf}"`` with identical bandwidth/latency.
    """
    net = Network(env)
    net.add_host(center, site=site)
    for leaf in leaves:
        net.add_host(leaf, site=site)
        net.add_link(f"{center}-{leaf}", center, leaf, bandwidth, latency)
    return net
