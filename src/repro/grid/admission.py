"""Per-VO fair-share admission control for session engine slots.

The paper's site policy caps engines *per session* (§2.2); nothing stops
one Virtual Organization from admitting enough sessions to starve every
other VO of workers.  This module adds the missing site-level layer:

* a fixed pool of **engine slots** (normally the worker count) that
  session admissions draw from;
* **weighted fair shares** per VO: VO *v*'s quota is
  ``capacity * share(v) / sum(shares)`` over the VOs seen so far, with a
  default share of 1.0 for unconfigured VOs;
* **work conservation**: a VO may borrow past its quota while no other
  VO is waiting — idle slots are never reserved;
* a bounded **per-VO wait queue**, served weighted-fair on release
  (the VO with the smallest ``active/share`` ratio goes first; strict —
  a large request at the head is never bypassed, so it cannot starve);
* `RetryAfter` **backpressure** once the queue is full, carrying a
  deterministic drain-time hint;
* admission gauges/counters and ``session_admitted`` /
  ``admission_rejected`` events on the observability plane.

The controller lives beside the GRAM gatekeeper, outside the session
service, so its slot accounting survives a manager-service crash (the
engines themselves keep running through one).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Mapping, Optional, Tuple

from repro.obs import NULL_OBS, Observability
from repro.services.envelope import RetryAfter
from repro.sim import Environment, Event


class AdmissionError(Exception):
    """Raised for requests the controller can never satisfy."""


class AdmissionController:
    """Weighted-fair engine-slot admission with backpressure.

    Parameters
    ----------
    env:
        Simulation environment (waits and hints use its clock).
    capacity:
        Total engine slots admissions may hold at once (normally the
        site's worker count).
    shares:
        VO name -> fair-share weight; unlisted VOs weigh 1.0.
    queue_depth:
        Admissions allowed to *wait* per VO when over quota; 0 (default)
        rejects immediately with :class:`RetryAfter`.
    retry_after_s:
        Base of the ``retry_after`` hint attached to rejections.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int,
        shares: Optional[Mapping[str, float]] = None,
        queue_depth: int = 0,
        retry_after_s: float = 5.0,
        obs: Optional[Observability] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if retry_after_s <= 0:
            raise ValueError("retry_after_s must be > 0")
        for vo, share in dict(shares or {}).items():
            if share <= 0:
                raise ValueError(f"share for VO {vo!r} must be > 0")
        self.env = env
        self.obs = obs or NULL_OBS
        self.capacity = capacity
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s
        self._shares: Dict[str, float] = dict(shares or {})
        #: VOs that ever requested admission — the quota denominator.
        self._seen: set = set(self._shares)
        self._active: Dict[str, int] = {}
        self._waiters: Dict[str, Deque[Tuple[int, Event]]] = {}
        self._active_gauge = self.obs.metrics.gauge(
            "admission_active_engines",
            "Engine slots currently held, per VO",
        )
        self._queue_gauge = self.obs.metrics.gauge(
            "admission_queue_depth",
            "Session admissions waiting for slots, per VO",
        )
        self._admit_metric = self.obs.metrics.counter(
            "admission_admits_total", "Engine slots granted, per VO"
        )
        self._reject_metric = self.obs.metrics.counter(
            "admission_rejections_total",
            "Session admissions refused with RetryAfter, per VO",
        )
        self._wait_metric = self.obs.metrics.histogram(
            "admission_wait_seconds",
            "Queued-admission wait until grant (simulated seconds)",
        )

    # -- introspection --------------------------------------------------
    def share(self, vo: str) -> float:
        """Fair-share weight of *vo* (1.0 when unconfigured)."""
        return self._shares.get(vo, 1.0)

    def quota(self, vo: str) -> float:
        """Soft slot quota of *vo* given the VOs seen so far."""
        members = self._seen | {vo}
        total = sum(self.share(member) for member in members)
        return self.capacity * self.share(vo) / total

    def active(self, vo: str) -> int:
        """Slots currently held by *vo*."""
        return self._active.get(vo, 0)

    @property
    def active_total(self) -> int:
        """Slots currently held across all VOs."""
        return sum(self._active.values())

    @property
    def free(self) -> int:
        """Slots not currently held."""
        return self.capacity - self.active_total

    def waiting(self, vo: Optional[str] = None) -> int:
        """Queued admissions for one VO, or across all VOs."""
        if vo is not None:
            return len(self._waiters.get(vo, ()))
        return sum(len(queue) for queue in self._waiters.values())

    def would_admit(self, vo: str, n: int = 1) -> bool:
        """Whether ``acquire(vo, n)`` would be granted without waiting.

        Pure read — no slots move, the VO is not marked as seen.  The
        federation broker uses this as the admission-headroom signal when
        scoring candidate sites.
        """
        if n < 1 or n > self.capacity:
            return False
        return self._admissible(vo, n)

    def retry_hint(self) -> float:
        """The ``retry_after`` hint a rejection would carry right now."""
        return self._retry_hint()

    def stats(self) -> dict:
        """Snapshot of the controller state (diagnostics)."""
        vos = sorted(self._seen | set(self._active) | set(self._waiters))
        return {
            "capacity": self.capacity,
            "free": self.free,
            "vos": {
                vo: {
                    "share": self.share(vo),
                    "quota": self.quota(vo),
                    "active": self.active(vo),
                    "waiting": self.waiting(vo),
                }
                for vo in vos
            },
        }

    # -- acquire / release ----------------------------------------------
    def acquire(self, vo: str, n: int = 1):
        """Generator op: obtain *n* engine slots for *vo*.

        Grants immediately when within quota (or borrowing is harmless),
        waits in the VO's bounded queue otherwise, and raises
        :class:`RetryAfter` when the queue is full.  ``yield from`` this
        inside a simulation process.
        """
        if n < 1:
            raise AdmissionError("slot count must be >= 1")
        if n > self.capacity:
            raise AdmissionError(
                f"requested {n} engine slots but the site admits at most "
                f"{self.capacity}"
            )
        self._seen.add(vo)
        if self._admissible(vo, n):
            self._grant(vo, n, waited=0.0)
            return
        queue = self._waiters.setdefault(vo, deque())
        if len(queue) >= self.queue_depth:
            self._reject_metric.inc(vo=vo)
            self.obs.events.emit(
                "admission_rejected",
                message=f"{vo} over quota ({n} slots refused)",
                severity="warning",
                vo=vo,
                engines=n,
                active=self.active(vo),
                quota=self.quota(vo),
            )
            raise RetryAfter(
                f"VO {vo!r} is over its fair share "
                f"({self.active(vo)}/{self.quota(vo):.1f} slots held); "
                f"retry later",
                retry_after=self._retry_hint(),
            )
        grant = self.env.event()
        queue.append((n, grant, self.env.now))
        self._queue_gauge.set(len(queue), vo=vo)
        # Slot accounting happens synchronously inside _serve_waiters the
        # moment the grant fires (so one release sweep can never hand the
        # same slots to two waiters); this just waits for it.
        yield grant

    def release(self, vo: str, n: int = 1) -> None:
        """Return *n* slots and serve queued admissions weighted-fair."""
        if n < 1:
            raise AdmissionError("slot count must be >= 1")
        current = self._active.get(vo, 0)
        self._active[vo] = max(0, current - n)
        self._active_gauge.set(self._active[vo], vo=vo)
        self._serve_waiters()

    # -- internals -------------------------------------------------------
    def _admissible(self, vo: str, n: int) -> bool:
        if n > self.free:
            return False
        if self.active(vo) + n <= self.quota(vo):
            return True
        # Work conservation: borrow past quota while nobody else waits.
        return not any(
            queue for other, queue in self._waiters.items() if other != vo
        )

    def _grant(self, vo: str, n: int, waited: float) -> None:
        self._active[vo] = self._active.get(vo, 0) + n
        self._active_gauge.set(self._active[vo], vo=vo)
        self._admit_metric.inc(n, vo=vo)
        self.obs.events.emit(
            "session_admitted",
            message=f"{vo} granted {n} engine slots",
            severity="debug",
            vo=vo,
            engines=n,
            active=self._active[vo],
            waited_s=waited,
        )

    def _serve_waiters(self) -> None:
        """Grant queued admissions in weighted-fair order.

        Repeatedly picks the waiting VO with the smallest
        ``active/share`` ratio (ties broken by VO name for determinism)
        and wakes its head admission if the slots fit.  Strict: a head
        that does not fit stops the sweep — smaller requests behind it
        never jump the fair-share order.
        """
        while True:
            candidates = [
                (self._active.get(vo, 0) / self.share(vo), vo)
                for vo, queue in sorted(self._waiters.items())
                if queue
            ]
            if not candidates:
                return
            _, vo = min(candidates)
            queue = self._waiters[vo]
            n, grant, enqueued_at = queue[0]
            if n > self.free:
                return
            queue.popleft()
            self._queue_gauge.set(len(queue), vo=vo)
            waited = self.env.now - enqueued_at
            self._wait_metric.observe(waited, vo=vo)
            self._grant(vo, n, waited=waited)
            grant.succeed()

    def _retry_hint(self) -> float:
        """Deterministic backoff hint scaled by the total backlog."""
        return self.retry_after_s * (1 + self.waiting())
