"""Simulated Grid substrate: network, transfers, nodes, scheduler, GRAM, security.

The paper's reference implementation ran on a real Open Science Grid site
(Globus GT4 + GRAM + GridFTP + a 16-node batch queue at SLAC).  This package
is the closest synthetic equivalent: every component is modelled explicitly
on the discrete-event kernel in :mod:`repro.sim`, with bandwidths, latencies,
CPU rates and queue policies calibrated against the paper's measurements
(see ``DESIGN.md`` §2 for the substitution rationale and ``repro.core.config``
for the calibration constants).

Modules
-------
``network``   hosts, links, routes and a max-min fair flow model
``transfer``  GridFTP-like file transfers (setup overhead, parallel streams)
``nodes``     worker / manager / storage / compute-element node types
``scheduler`` batch scheduler with a dedicated interactive queue
``gram``      GRAM-like gatekeeper for job submission
``security``  toy GSI: CA, identity + proxy certificates, VO authorization
"""

from repro.grid.network import Host, Link, Network, Route, TransferStats
from repro.grid.nodes import (
    ComputeElement,
    ManagerNode,
    NodeSpec,
    StorageElement,
    WorkerNode,
)

__all__ = [
    "ComputeElement",
    "Host",
    "Link",
    "ManagerNode",
    "Network",
    "NodeSpec",
    "Route",
    "StorageElement",
    "TransferStats",
    "WorkerNode",
]
