"""Batch scheduler with a dedicated interactive queue.

The paper's key site-level requirement (§1, §6) is "a dedicated timely
scheduler queue": interactive analysis engines must start "within the limits
of human tolerance" (§2.3), which an ordinary batch queue full of
multi-hour production jobs cannot guarantee.

This scheduler models a simplified LSF/PBS:

* named queues, each with a *priority* (lower = dispatched first), a
  *dispatch latency* (how long the scheduler takes to place a runnable job —
  batch schedulers of the era polled every 30–60 s, the dedicated
  interactive queue here dispatches in ~1 s) and an optional *wall-time
  limit*;
* one job occupies one worker node; jobs wait until a worker is idle;
* jobs can be cancelled while pending or running (session shutdown kills
  the engines, §2.3: "started for each session and shut down at the end").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Dict, Generator, List, Optional

from repro.grid.nodes import ComputeElement, WorkerNode
from repro.obs import NULL_OBS, Observability
from repro.sim import Environment, Event, Interrupt, NodeFailure, Process


class SchedulerError(Exception):
    """Raised for invalid scheduler operations."""


class JobState:
    """Job lifecycle states (string constants)."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    KILLED = "killed"  # exceeded wall-time

    TERMINAL = frozenset({COMPLETED, FAILED, CANCELLED, KILLED})


@dataclass(frozen=True)
class QueueSpec:
    """Configuration of one scheduler queue.

    Parameters
    ----------
    name:
        Queue name (e.g. ``"interactive"``, ``"batch"``).
    priority:
        Dispatch priority; lower values dispatch first.
    dispatch_latency:
        Seconds between a worker becoming available and the job actually
        starting (scheduler polling / placement cost).
    max_wall_time:
        Optional per-job run-time ceiling in seconds.
    """

    name: str
    priority: int = 10
    dispatch_latency: float = 30.0
    max_wall_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.dispatch_latency < 0:
            raise ValueError("dispatch_latency must be >= 0")
        if self.max_wall_time is not None and self.max_wall_time <= 0:
            raise ValueError("max_wall_time must be > 0")


class Job:
    """A scheduled unit of work bound to one worker node.

    The *body* is a callable ``body(env, worker) -> generator`` executed as a
    simulation process once the job is dispatched.  :attr:`done` is an event
    that fires (successfully) when the job reaches a terminal state; its
    value is the job itself.
    """

    def __init__(
        self,
        job_id: int,
        name: str,
        queue: str,
        body: Callable[[Environment, WorkerNode], Generator],
        env: Environment,
        preferred: Optional[List[str]] = None,
        vo: Optional[str] = None,
    ) -> None:
        self.id = job_id
        self.name = name
        self.queue = queue
        self.body = body
        #: Worker names to try first (data affinity), best first.
        self.preferred = list(preferred or [])
        #: Virtual Organization the submitter belongs to (``None`` =
        #: untagged); drives weighted-fair dispatch within a queue tier.
        self.vo = vo
        self.state = JobState.PENDING
        self.worker: Optional[WorkerNode] = None
        self.submit_time = env.now
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.done: Event = env.event()
        self._process: Optional[Process] = None

    @property
    def wait_time(self) -> Optional[float]:
        """Queue wait (submit → start), once started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Job {self.id} {self.name!r} {self.state}>"


class BatchScheduler:
    """Multi-queue scheduler over a :class:`ComputeElement`'s workers."""

    def __init__(
        self,
        env: Environment,
        element: ComputeElement,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.element = element
        self.obs = obs or NULL_OBS
        self._queues: Dict[str, QueueSpec] = {}
        self._pending: List[Job] = []
        self._job_seq = count(1)
        self._jobs: Dict[int, Job] = {}
        self._wakeup: Event = env.event()
        self._idle: List[WorkerNode] = list(element.workers)
        #: Workers the anomaly monitor flagged as stragglers: still
        #: schedulable (a hint, not a ban) but chosen only when no
        #: unflagged worker is available.
        self._deprioritized: set = set()
        #: VO -> fair-share weight (default 1.0); drives the weighted-
        #: fair rank used within a queue-priority tier.
        self._vo_weights: Dict[Optional[str], float] = {}
        #: VO -> jobs dispatched so far (the WFQ virtual-service count).
        self._vo_served: Dict[Optional[str], int] = {}
        env.process(self._dispatcher())

    # -- configuration --------------------------------------------------
    def add_queue(self, spec: QueueSpec) -> None:
        """Register a queue; names must be unique."""
        if spec.name in self._queues:
            raise SchedulerError(f"queue {spec.name!r} already exists")
        self._queues[spec.name] = spec

    def set_vo_weight(self, vo: str, weight: float) -> None:
        """Set a VO's fair-share weight for dispatch (default 1.0)."""
        if weight <= 0:
            raise SchedulerError("weight must be > 0")
        self._vo_weights[vo] = weight

    def vo_served(self, vo: Optional[str]) -> int:
        """Jobs dispatched so far for *vo* (WFQ bookkeeping)."""
        return self._vo_served.get(vo, 0)

    def _wfq_rank(self, vo: Optional[str]) -> float:
        """Weighted-fair rank: lower = more underserved.

        With a single VO (or every job untagged) all pending jobs share
        one rank and dispatch degenerates to the original submission
        (job-id) order — existing single-tenant behaviour is unchanged.
        """
        return self._vo_served.get(vo, 0) / self._vo_weights.get(vo, 1.0)

    @property
    def queues(self) -> Dict[str, QueueSpec]:
        """All registered queues by name."""
        return dict(self._queues)

    # -- submission -------------------------------------------------------
    def submit(
        self,
        name: str,
        queue: str,
        body: Callable[[Environment, WorkerNode], Generator],
        preferred: Optional[List[str]] = None,
        vo: Optional[str] = None,
    ) -> Job:
        """Queue a job; returns the :class:`Job` handle immediately.

        *preferred* names workers to place the job on if idle and healthy
        (data-affinity hint from the replica catalog: land the engine
        where its dataset parts are already cached); placement falls back
        to the first idle worker when none of them is available.  *vo*
        tags the job for weighted-fair dispatch between VOs sharing a
        queue tier.
        """
        if queue not in self._queues:
            raise SchedulerError(f"unknown queue {queue!r}")
        job = Job(
            next(self._job_seq), name, queue, body, self.env,
            preferred=preferred, vo=vo,
        )
        self._jobs[job.id] = job
        self._pending.append(job)
        self._kick()
        return job

    def job(self, job_id: int) -> Job:
        """Look up a job by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise SchedulerError(f"unknown job id {job_id}") from None

    def cancel(self, job_id: int, reason: object = "cancelled") -> None:
        """Cancel a pending or running job (idempotent on terminal jobs)."""
        job = self.job(job_id)
        if job.state in JobState.TERMINAL:
            return
        if job.state == JobState.PENDING:
            self._pending.remove(job)
            self._finish(job, JobState.CANCELLED)
        elif job._process is not None and job._process.is_alive:
            job._process.interrupt(reason)

    # -- introspection ----------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Jobs waiting for a worker."""
        return len(self._pending)

    @property
    def running_count(self) -> int:
        """Jobs currently executing."""
        return sum(
            1 for j in self._jobs.values() if j.state == JobState.RUNNING
        )

    @property
    def idle_worker_count(self) -> int:
        """Workers with no job assigned."""
        return len(self._idle)

    @property
    def available_worker_count(self) -> int:
        """Idle workers that are healthy (dispatchable)."""
        return sum(1 for w in self._idle if not w.failed)

    def running_job_on(self, worker_name: str) -> Optional[Job]:
        """The job currently running on *worker_name*, if any."""
        for job in self._jobs.values():
            if (
                job.state == JobState.RUNNING
                and job.worker is not None
                and job.worker.name == worker_name
            ):
                return job
        return None

    def restore_worker(self, name: str) -> None:
        """Mark a failed worker healthy again and make it dispatchable."""
        worker = self.element.worker(name)
        worker.failed = False
        worker.slow_factor = 1.0
        if not worker.busy and worker not in self._idle:
            self._idle.append(worker)
        self.restore_priority(name)
        self._kick()

    # -- placement hints ---------------------------------------------------
    def deprioritize(self, name: str) -> None:
        """Hint: place new jobs on *name* only as a last resort.

        Fed by straggler detection; idempotent, and never blocks
        placement — with every worker deprioritized, dispatch proceeds
        as if none were.
        """
        self.element.worker(name)  # validate the name
        self._deprioritized.add(name)
        self.obs.metrics.gauge(
            "scheduler_deprioritized_workers",
            "Workers currently hinted away from new placements",
        ).set(len(self._deprioritized))

    def restore_priority(self, name: str) -> None:
        """Drop the deprioritization hint for *name* (idempotent)."""
        self._deprioritized.discard(name)
        self.obs.metrics.gauge(
            "scheduler_deprioritized_workers",
            "Workers currently hinted away from new placements",
        ).set(len(self._deprioritized))

    @property
    def deprioritized(self) -> List[str]:
        """Currently deprioritized worker names, sorted."""
        return sorted(self._deprioritized)

    # -- internals --------------------------------------------------------
    def _kick(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _dispatcher(self):
        while True:
            # Dispatch as many jobs as there are idle workers, in
            # (queue priority, weighted-fair VO rank, submission order)
            # order.  Each job lands on its first available preferred
            # worker (data affinity), or the first idle worker when it
            # has no reachable preference.
            while self._pending:
                healthy = [w for w in self._idle if not w.failed]
                if not healthy:
                    break
                job = min(
                    self._pending,
                    key=lambda j: (
                        self._queues[j.queue].priority,
                        self._wfq_rank(j.vo),
                        j.id,
                    ),
                )
                self._vo_served[job.vo] = self._vo_served.get(job.vo, 0) + 1
                # Straggler hints demote workers without banning them:
                # both the data-affinity preference list and the
                # first-idle fallback try unflagged workers first, and a
                # flagged worker is still used when it is all that's left.
                demoted = self._deprioritized
                candidates = sorted(
                    healthy, key=lambda w: w.name in demoted
                )  # stable: keeps idle order within each tier
                worker = None
                for name in sorted(
                    job.preferred,
                    key=lambda n: (n in demoted, job.preferred.index(n)),
                ):
                    worker = next(
                        (w for w in candidates if w.name == name), None
                    )
                    if worker is not None:
                        break
                if worker is None:
                    worker = candidates[0]
                self._pending.remove(job)
                self._idle.remove(worker)
                self.env.process(self._run_job(job, worker))
            yield self._wakeup
            self._wakeup = self.env.event()

    def _run_job(self, job: Job, worker: WorkerNode):
        spec = self._queues[job.queue]
        if spec.dispatch_latency:
            yield self.env.timeout(spec.dispatch_latency)
        job.state = JobState.RUNNING
        job.start_time = self.env.now
        job.worker = worker
        worker.engine_id = f"job-{job.id}"
        self.obs.metrics.histogram(
            "scheduler_queue_wait_seconds",
            "Queue wait from job submit to dispatch (simulated seconds)",
        ).observe(job.wait_time, queue=job.queue)
        self.obs.metrics.counter(
            "scheduler_jobs_started_total", "Jobs dispatched to a worker"
        ).inc(queue=job.queue)
        body_proc = self.env.process(job.body(self.env, worker))
        job._process = body_proc

        watchdog: Optional[Process] = None
        if spec.max_wall_time is not None:
            watchdog = self.env.process(
                self._watchdog(body_proc, spec.max_wall_time)
            )
        try:
            job.result = yield body_proc
            job_state = JobState.COMPLETED
        except Interrupt as intr:
            if isinstance(intr.cause, NodeFailure):
                # Infrastructure failure, not a user cancel: the job failed
                # and the node is unusable until explicitly restored.
                job.error = intr.cause
                job_state = JobState.FAILED
                worker.failed = True
            else:
                job.error = intr
                job_state = (
                    JobState.KILLED
                    if intr.cause == "wall-time"
                    else JobState.CANCELLED
                )
        except NodeFailure as exc:  # body observed its node failing
            job.error = exc
            job_state = JobState.FAILED
            worker.failed = True
        except BaseException as exc:  # job body crashed
            job.error = exc
            job_state = JobState.FAILED
        if watchdog is not None and watchdog.is_alive:
            watchdog.interrupt("job-done")
        worker.engine_id = None
        if not worker.failed:
            self._idle.append(worker)
        self._finish(job, job_state)
        self._kick()

    def _watchdog(self, body_proc: Process, limit: float):
        try:
            yield self.env.timeout(limit)
        except Interrupt:
            return  # job finished in time
        if body_proc.is_alive:
            body_proc.interrupt("wall-time")

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.end_time = self.env.now
        self.obs.metrics.counter(
            "scheduler_jobs_finished_total", "Jobs reaching a terminal state"
        ).inc(queue=job.queue, state=state)
        if not job.done.triggered:
            job.done.succeed(job)
