"""Node types of the simulated grid site.

The paper's architecture (Fig. 2) involves four kinds of machines:

* the user's desktop (client) — outside the site, across the WAN;
* a **manager node** hosting the IPA web services;
* a **storage element** (SE) holding the large dataset files, with GridFTP;
* **worker nodes** of the compute element (CE), where analysis engines run.

Each node owns a CPU resource (so compute work serializes per-core), a disk
with a finite read/write rate, and a host name on the
:class:`~repro.grid.network.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import Environment, Process, Resource


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node's hardware.

    Parameters
    ----------
    cpu_mhz:
        Clock rate used to scale compute costs (paper: 1.7 GHz desktop vs
        866 MHz grid workers).
    cores:
        Number of CPU slots (the 2006 testbed machines were single-core).
    disk_read_mbps / disk_write_mbps:
        Sequential disk bandwidth in MB/s.
    """

    cpu_mhz: float = 1000.0
    cores: int = 1
    disk_read_mbps: float = 50.0
    disk_write_mbps: float = 50.0

    def __post_init__(self) -> None:
        if self.cpu_mhz <= 0:
            raise ValueError("cpu_mhz must be > 0")
        if self.cores <= 0:
            raise ValueError("cores must be > 0")
        if self.disk_read_mbps <= 0 or self.disk_write_mbps <= 0:
            raise ValueError("disk bandwidths must be > 0")


class Node:
    """Base class: a named machine with CPU and disk resources.

    Compute work is expressed in *reference seconds* — the time the work
    would take on a ``reference_mhz`` machine — and scaled by the node's
    clock rate, mirroring the paper's 1.7 GHz vs 866 MHz comparison.
    """

    #: Clock rate that compute costs are quoted against.
    reference_mhz: float = 1700.0

    def __init__(self, env: Environment, name: str, spec: NodeSpec) -> None:
        self.env = env
        self.name = name
        self.spec = spec
        self.cpu = Resource(env, capacity=spec.cores)
        #: Files staged on this node's local disk: name -> size MB.
        self.disk_files: Dict[str, float] = {}

    # -- compute ----------------------------------------------------------
    def compute_time(self, reference_seconds: float) -> float:
        """Scale *reference_seconds* by this node's CPU clock."""
        return reference_seconds * (self.reference_mhz / self.spec.cpu_mhz)

    def compute(self, reference_seconds: float) -> Process:
        """Run CPU work, queueing for a core; returns a process to wait on."""
        if reference_seconds < 0:
            raise ValueError("reference_seconds must be >= 0")
        return self.env.process(self._compute(reference_seconds))

    def _compute(self, reference_seconds: float):
        with self.cpu.request() as slot:
            yield slot
            yield self.env.timeout(self.compute_time(reference_seconds))

    # -- disk -------------------------------------------------------------
    def disk_read(self, size_mb: float) -> Process:
        """Sequential read of *size_mb* from local disk."""
        return self._disk_io(size_mb, self.spec.disk_read_mbps)

    def disk_write(self, size_mb: float) -> Process:
        """Sequential write of *size_mb* to local disk."""
        return self._disk_io(size_mb, self.spec.disk_write_mbps)

    def _disk_io(self, size_mb: float, rate: float) -> Process:
        if size_mb < 0:
            raise ValueError("size_mb must be >= 0")

        def io():
            yield self.env.timeout(size_mb / rate)

        return self.env.process(io())

    def store_file(self, name: str, size_mb: float) -> None:
        """Record a file as present on this node's disk."""
        self.disk_files[name] = size_mb

    def has_file(self, name: str) -> bool:
        """Whether *name* is staged on this node."""
        return name in self.disk_files

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class WorkerNode(Node):
    """A compute-element worker where one analysis engine runs per session."""

    def __init__(self, env: Environment, name: str, spec: NodeSpec) -> None:
        super().__init__(env, name, spec)
        #: Engine identifier currently running here, if any.
        self.engine_id: Optional[str] = None
        #: Set when the node has failed (crash/hang/unreachable); the
        #: scheduler stops dispatching to it until it is restored.
        self.failed: bool = False
        #: Set while the node's network link is down: heartbeats from the
        #: engine cannot reach the manager even though compute continues.
        self.link_down: bool = False
        #: Multiplier applied to analysis compute on this node (> 1 models
        #: a degraded/preempted "slow node").
        self.slow_factor: float = 1.0

    @property
    def busy(self) -> bool:
        """Whether an analysis engine occupies this worker."""
        return self.engine_id is not None

    @property
    def available(self) -> bool:
        """Whether the worker can accept a new engine."""
        return not self.busy and not self.failed


class ManagerNode(Node):
    """The broker node hosting the IPA web services."""


class StorageElement(Node):
    """Grid storage holding datasets, fronted by the GridFTP service.

    The SE's *disk read* rate is the serial stage of the "move parts" step:
    parts are read off one disk spindle sequentially even though the network
    transfers proceed in parallel (this reproduces the ``46 + 62/N`` shape of
    Table 2 — see DESIGN.md).
    """

    def __init__(self, env: Environment, name: str, spec: NodeSpec) -> None:
        super().__init__(env, name, spec)
        # One spindle: concurrent reads serialize.
        self.disk = Resource(env, capacity=1)

    def sequential_read(self, size_mb: float) -> Process:
        """Read *size_mb* with exclusive access to the single spindle."""

        def io():
            with self.disk.request() as claim:
                yield claim
                yield self.env.timeout(size_mb / self.spec.disk_read_mbps)

        return self.env.process(io())


class ComputeElement:
    """A named pool of worker nodes behind one gatekeeper/scheduler.

    Parameters
    ----------
    name:
        CE identifier (e.g. ``"slac-osg"``).
    workers:
        The worker nodes managed by this element.
    """

    def __init__(self, name: str, workers: List[WorkerNode]) -> None:
        if not workers:
            raise ValueError("a compute element needs at least one worker")
        names = [w.name for w in workers]
        if len(set(names)) != len(names):
            raise ValueError("duplicate worker names")
        self.name = name
        self.workers = list(workers)

    def __len__(self) -> int:
        return len(self.workers)

    def idle_workers(self) -> List[WorkerNode]:
        """Workers with no engine assigned."""
        return [w for w in self.workers if not w.busy]

    def worker(self, name: str) -> WorkerNode:
        """Look up a worker by name."""
        for candidate in self.workers:
            if candidate.name == name:
                return candidate
        raise KeyError(name)
