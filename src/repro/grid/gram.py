"""GRAM-like gatekeeper: authenticated job submission to the site scheduler.

In the reference implementation, the session service uses a GRAM client to
ask the site's GRAM server to start "a pre-configured number of analysis
engines" on the job scheduler (§3.2).  This module models that gatekeeper:

* a **job description** (the RSL of Globus, reduced to a dataclass);
* per-request **authentication** (certificate chain validated against the
  CA) and **authorization** (VO policy, which also caps the engine count);
* fan-out of one scheduler job per requested engine;
* a status/cancel API and completion callbacks, which the worker registry
  uses to learn where engines came up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Sequence

from repro.grid.scheduler import BatchScheduler, Job, JobState
from repro.obs import NULL_OBS, Observability
from repro.grid.security import (
    AuthorizationService,
    Certificate,
    CertificateAuthority,
    SecurityError,
)
from repro.resilience.retry import RetryPolicy
from repro.sim import Environment, Event, Interrupt
from repro.grid.nodes import WorkerNode


class GramError(Exception):
    """Raised when a GRAM request is malformed or rejected."""


class GramUnavailable(GramError):
    """Transient gatekeeper outage: the request may be retried."""


@dataclass(frozen=True)
class JobDescription:
    """Reduced RSL: what to run, how many, and on which queue.

    Parameters
    ----------
    executable:
        Name of the program to start (informational; the body callable does
        the actual work in simulation).
    count:
        Number of engine instances requested.
    queue:
        Scheduler queue; defaults to the site's interactive queue when
        submitted through :meth:`GramGatekeeper.submit`.
    arguments:
        Free-form argument list (informational).
    """

    executable: str
    count: int = 1
    queue: Optional[str] = None
    arguments: Sequence[str] = ()

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not self.executable:
            raise ValueError("executable must be non-empty")


@dataclass
class GramSubmission:
    """Handle for a multi-job GRAM request."""

    request_id: int
    identity: str
    jobs: List[Job]
    #: Fires when every job has reached a terminal state.
    all_done: Event

    @property
    def states(self) -> List[str]:
        """Current state of every job, in submission order."""
        return [job.state for job in self.jobs]

    @property
    def workers(self) -> List[Optional[WorkerNode]]:
        """Worker node of every job (``None`` until dispatched)."""
        return [job.worker for job in self.jobs]


class GramGatekeeper:
    """Site entry point for starting analysis-engine jobs."""

    def __init__(
        self,
        env: Environment,
        scheduler: BatchScheduler,
        ca: CertificateAuthority,
        authz: AuthorizationService,
        auth_overhead: float = 0.5,
        obs: Optional["Observability"] = None,
    ) -> None:
        if auth_overhead < 0:
            raise ValueError("auth_overhead must be >= 0")
        self.env = env
        self.obs = obs or NULL_OBS
        self.scheduler = scheduler
        self.ca = ca
        self.authz = authz
        self.auth_overhead = auth_overhead
        self._request_seq = 0
        #: Remaining injected transient outages (consumed per submit).
        self._pending_failures = 0
        #: Backoff schedule used by :meth:`submit_with_retry`.
        self.retry_policy = RetryPolicy(
            max_attempts=3, base_delay=2.0, multiplier=2.0, max_delay=60.0
        )

    def inject_failures(self, count: int) -> None:
        """Make the next *count* submissions fail with :class:`GramUnavailable`."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._pending_failures = count

    def submit(
        self,
        description: JobDescription,
        credential_chain: List[Certificate],
        body_factory: Callable[
            [int], Callable[[Environment, WorkerNode], Generator]
        ],
        preferred: Optional[Sequence[str]] = None,
    ) -> GramSubmission:
        """Authenticate, authorize and enqueue ``description.count`` jobs.

        Parameters
        ----------
        body_factory:
            Called with the engine index (0-based) to produce each job body
            — engines need distinct identities for the registry.
        preferred:
            Data-affinity hint forwarded to the scheduler: worker names
            (best first) that already cache parts of the dataset the
            session will analyze.  Sequential dispatch spreads the hint
            across the engines — each job takes the best still-idle
            preferred worker.

        Raises
        ------
        GramError
            If the engine count exceeds the site policy or the queue is
            unknown.
        SecurityError
            On authentication/authorization failure.
        """
        span = self.obs.tracer.child(
            "gram.submit",
            executable=description.executable,
            count=description.count,
        )
        if self._pending_failures > 0:
            self._pending_failures -= 1
            self.obs.metrics.counter(
                "gram_unavailable_total", "Transient gatekeeper outages hit"
            ).inc()
            self.obs.events.emit(
                "gram_unavailable",
                message="gatekeeper temporarily unavailable",
                severity="warning",
                executable=description.executable,
            )
            span.finish(error="gatekeeper temporarily unavailable")
            raise GramUnavailable("gatekeeper temporarily unavailable")
        identity = self.ca.validate_chain(credential_chain, self.env.now)
        policy = self.authz.authorize(identity)
        # Tag the jobs with the submitter's VO so the scheduler can
        # dispatch weighted-fair between VOs sharing a queue tier.
        vo = self.authz.vo_of(identity)
        if description.count > policy.max_engines_per_session:
            raise GramError(
                f"requested {description.count} engines but site policy "
                f"allows {policy.max_engines_per_session}"
            )
        queue = description.queue or policy.interactive_queue
        if queue not in self.scheduler.queues:
            raise GramError(f"unknown queue {queue!r}")

        self._request_seq += 1
        request_id = self._request_seq
        jobs = [
            self.scheduler.submit(
                name=f"{description.executable}#{index}",
                queue=queue,
                body=self._with_auth_overhead(body_factory(index)),
                preferred=list(preferred) if preferred else None,
                vo=vo,
            )
            for index in range(description.count)
        ]
        submission = GramSubmission(
            request_id=request_id,
            identity=identity,
            jobs=jobs,
            all_done=self.env.all_of([job.done for job in jobs]),
        )
        span.finish(request_id=request_id, queue=queue)
        self.obs.metrics.counter(
            "gram_submissions_total", "Accepted GRAM submissions"
        ).inc(queue=queue)
        return submission

    def submit_with_retry(
        self,
        description: JobDescription,
        credential_chain: List[Certificate],
        body_factory: Callable[
            [int], Callable[[Environment, WorkerNode], Generator]
        ],
        policy: Optional[RetryPolicy] = None,
        preferred: Optional[Sequence[str]] = None,
    ) -> Generator:
        """Like :meth:`submit`, retrying transient gatekeeper outages.

        Generator to ``yield from`` inside a simulation process.  Only
        :class:`GramUnavailable` is retried — authentication, policy and
        queue errors are permanent and propagate on the first attempt.
        """
        policy = policy or self.retry_policy
        start = self.env.now
        last_error: Optional[GramUnavailable] = None
        for attempt in range(policy.max_attempts):
            try:
                return self.submit(
                    description, credential_chain, body_factory,
                    preferred=preferred,
                )
            except GramUnavailable as exc:
                last_error = exc
                if not policy.should_retry(attempt, self.env.now - start):
                    break
                yield self.env.timeout(
                    policy.delay(attempt, salt=("gram", self._request_seq))
                )
        raise last_error

    def _with_auth_overhead(
        self, body: Callable[[Environment, WorkerNode], Generator]
    ) -> Callable[[Environment, WorkerNode], Generator]:
        overhead = self.auth_overhead

        def wrapped(env: Environment, worker: WorkerNode):
            if overhead:
                yield env.timeout(overhead)
            inner = env.process(body(env, worker))
            try:
                result = yield inner
            except Interrupt as intr:
                # Forward the cancellation to the engine body, then report
                # its outcome (a graceful body may still return a value).
                if inner.is_alive:
                    inner.interrupt(intr.cause)
                try:
                    return (yield inner)
                except BaseException:
                    raise intr from None
            return result

        return wrapped

    def cancel(self, submission: GramSubmission, reason: object = "session-end") -> None:
        """Cancel every non-terminal job of a submission (§2.3 shutdown)."""
        for job in submission.jobs:
            if job.state not in JobState.TERMINAL:
                self.scheduler.cancel(job.id, reason)

    def status(self, submission: GramSubmission) -> dict:
        """Summarize a submission's job states."""
        counts: dict = {}
        for state in submission.states:
            counts[state] = counts.get(state, 0) + 1
        return counts
