"""GridFTP-like transfer service.

Models the three data movements of the paper's staging pipeline (§3.4):

1. **fetch** — move the whole dataset file from its original location to the
   storage element (or, in the local-analysis baseline, across the WAN to
   the desktop);
2. **scatter** — move the split parts from the SE to the worker nodes; the
   parts are read off the SE's single disk spindle *sequentially* but travel
   over the per-worker LAN links *in parallel* (pipelined), which is exactly
   why Table 2's "move parts" column only falls from 105 s to 50 s between
   1 and 16 nodes instead of scaling 1/N;
3. **stage code** — tiny analysis-code archives, dominated by fixed
   per-transfer control-channel overhead (Table 1: 7 s for 15 kB).

Parallel streams: a real GridFTP opens *n* TCP streams to defeat single
stream window limits.  Here each stream contributes ``stream_rate`` MB/s of
per-flow ceiling (never exceeding link capacity, which the max-min model
enforces).

Fault tolerance: transient failures can be injected per service
(:meth:`GridFTPService.inject_failures`); ``transfer_file`` retries under
a :class:`~repro.resilience.retry.RetryPolicy` (exponential backoff with
optional deterministic jitter), raising :class:`TransferError` once the
policy is exhausted — mirroring real GridFTP clients' restart behaviour.
A dropped network link (:class:`~repro.sim.LinkDown`) is retried the same
way, so a transfer survives a brief outage if the link comes back.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grid.network import Network, TransferStats
from repro.grid.nodes import Node, StorageElement
from repro.obs import NULL_OBS, Observability
from repro.resilience.retry import RetryPolicy
from repro.sim import Environment, LinkDown, Process


class TransferError(Exception):
    """Raised when a transfer cannot be performed."""


@dataclass
class ScatterReport:
    """Result of scattering dataset parts to workers."""

    started_at: float
    finished_at: float
    per_part: List[TransferStats]

    @property
    def duration(self) -> float:
        """Total simulated seconds from first disk read to last delivery."""
        return self.finished_at - self.started_at

    @property
    def total_mb(self) -> float:
        """Total payload moved."""
        return sum(stat.size_mb for stat in self.per_part)


class GridFTPService:
    """File mover bound to a network and a set of nodes.

    Parameters
    ----------
    env, network:
        Simulation environment and the topology transfers run over.
    setup_overhead:
        Fixed control-channel cost per transfer in seconds (authentication
        handshake + channel establishment).
    stream_rate:
        Per-TCP-stream rate ceiling in MB/s, or ``None`` for no per-flow
        cap.  Multiplied by ``streams`` to form the flow cap.
    streams:
        Default number of parallel streams per transfer.
    retry_policy:
        Backoff schedule for failed attempts.  The default (base delay
        1 s, multiplier 2, no jitter) reproduces the historical fixed
        1 s first-retry delay exactly; pass a jittered policy (with a
        seed) for desynchronised but still deterministic retries.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        setup_overhead: float = 0.5,
        stream_rate: Optional[float] = None,
        streams: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if setup_overhead < 0:
            raise ValueError("setup_overhead must be >= 0")
        if streams < 1:
            raise ValueError("streams must be >= 1")
        if stream_rate is not None and stream_rate <= 0:
            raise ValueError("stream_rate must be > 0")
        self.env = env
        self.network = network
        self.setup_overhead = setup_overhead
        self.stream_rate = stream_rate
        self.default_streams = streams
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=1.0, multiplier=2.0, max_delay=30.0
        )
        self.obs = obs or NULL_OBS
        #: Completed transfers, newest last (for tests/diagnostics).
        self.log: List[TransferStats] = []
        #: Remaining injected transient failures (consumed per attempt).
        self._pending_failures = 0
        #: Per-transfer salt so concurrent transfers get independent (but
        #: deterministic) jitter streams.
        self._transfer_seq = count()

    def inject_failures(self, count: int) -> None:
        """Make the next *count* transfer attempts fail mid-flight."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._pending_failures = count

    def _consume_failure(self) -> bool:
        if self._pending_failures > 0:
            self._pending_failures -= 1
            return True
        return False

    # ------------------------------------------------------------------
    def _flow_cap(self, streams: Optional[int]) -> Optional[float]:
        n = self.default_streams if streams is None else streams
        if n < 1:
            raise ValueError("streams must be >= 1")
        if self.stream_rate is None:
            return None
        return self.stream_rate * n

    def transfer_file(
        self,
        src: Node,
        dst: Node,
        name: str,
        size_mb: float,
        streams: Optional[int] = None,
        read_disk: bool = True,
        write_disk: bool = True,
        retries: Optional[int] = 2,
    ) -> Process:
        """Move one file between nodes; returns a waitable process.

        The process value is a :class:`~repro.grid.network.TransferStats`.
        Disk read at the source and write at the destination are included
        unless disabled (the scatter path manages SE disk reads itself).
        Injected transient failures abort an attempt halfway; restarts
        (full re-send, GridFTP-classic) follow the service's
        :class:`RetryPolicy` before :class:`TransferError` is raised.
        *retries* overrides the policy's attempt budget
        (``attempts = retries + 1``); pass ``None`` to use the policy's
        own ``max_attempts``.
        """
        if size_mb < 0:
            raise ValueError("size_mb must be >= 0")
        if retries is not None and retries < 0:
            raise ValueError("retries must be >= 0")
        cap = self._flow_cap(streams)
        policy = (
            self.retry_policy
            if retries is None
            else self.retry_policy.with_attempts(retries + 1)
        )
        salt = next(self._transfer_seq)

        def attempt():
            if self.setup_overhead:
                yield self.env.timeout(self.setup_overhead)
            if read_disk:
                yield src.disk_read(size_mb)
            if self._consume_failure():
                # Model a mid-flight abort: half the transfer time is lost.
                half = self.network.transfer(
                    src.name, dst.name, size_mb / 2, stream_cap=cap
                )
                yield half
                raise TransferError(
                    f"transfer of {name!r} to {dst.name} aborted mid-flight"
                )
            stats = yield self.network.transfer(
                src.name, dst.name, size_mb, stream_cap=cap
            )
            if write_disk:
                yield dst.disk_write(size_mb)
            dst.store_file(name, size_mb)
            self.log.append(stats)
            return stats

        metrics = self.obs.metrics
        span = self.obs.tracer.start(
            "ftp.transfer", file=name, src=src.name, dst=dst.name, mb=size_mb
        )

        def run():
            start = self.env.now
            last_error: Optional[Exception] = None
            for attempt_index in range(policy.max_attempts):
                try:
                    stats = yield self.env.process(attempt())
                    span.set(attempts=attempt_index + 1)
                    metrics.counter(
                        "ftp_transfers_total", "Completed GridFTP transfers"
                    ).inc()
                    metrics.counter(
                        "ftp_bytes_mb_total", "Payload moved over GridFTP (MB)"
                    ).inc(size_mb)
                    metrics.histogram(
                        "ftp_transfer_seconds",
                        "GridFTP transfer duration incl. retries (simulated)",
                    ).observe(self.env.now - start)
                    return stats
                except (TransferError, LinkDown) as exc:
                    last_error = exc
                    metrics.counter(
                        "ftp_retries_total",
                        "GridFTP transfer attempts that failed mid-flight",
                    ).inc()
                    if not policy.should_retry(
                        attempt_index, self.env.now - start
                    ):
                        break
                    delay = policy.delay(attempt_index, salt)
                    if delay:
                        yield self.env.timeout(delay)
            metrics.counter(
                "ftp_failures_total", "GridFTP transfers that exhausted retries"
            ).inc()
            self.obs.events.emit(
                "transfer_failed",
                message=f"{name}: {src.name} -> {dst.name} exhausted retries",
                severity="warning",
                file=name,
                src=src.name,
                dst=dst.name,
                mb=size_mb,
                attempts=policy.max_attempts,
            )
            raise last_error

        return self.env.process(self.obs.tracer.wrap(span, run()))

    def third_party(
        self,
        src_se: Node,
        dst_se: Node,
        name: str,
        size_mb: float,
        streams: Optional[int] = None,
        retries: Optional[int] = 2,
    ) -> Process:
        """SE→SE third-party transfer (server-to-server, client off-path).

        Classic GridFTP third-party mode: the control channel tells the
        source SE to push straight to the destination SE, so the payload
        crosses only the inter-site links between the two storage
        elements — never the client WAN.  This is the replica-migration
        primitive the federation broker uses to move whole-dataset copies
        toward sessions (Allcock et al.'s replica-management transport).

        Timing and retry semantics are exactly :meth:`transfer_file`
        (both SE spindles are charged); only the accounting differs so
        migrations are distinguishable from staging traffic.
        """
        metrics = self.obs.metrics
        span = self.obs.tracer.start(
            "ftp.third_party",
            file=name,
            src=src_se.name,
            dst=dst_se.name,
            mb=size_mb,
        )

        def run():
            stats = yield self.transfer_file(
                src_se, dst_se, name, size_mb, streams=streams, retries=retries
            )
            metrics.counter(
                "ftp_third_party_transfers_total",
                "Completed SE-to-SE third-party transfers",
            ).inc()
            metrics.counter(
                "ftp_third_party_mb_total",
                "Payload moved by third-party transfers (MB)",
            ).inc(size_mb)
            return stats

        return self.env.process(self.obs.tracer.wrap(span, run()))

    def scatter(
        self,
        source: StorageElement,
        destinations: Sequence[Node],
        parts: Sequence[Tuple[str, float]],
        streams: Optional[int] = None,
    ) -> Process:
        """Move split *parts* to *destinations*, one part per node, pipelined.

        Parts are read from the SE spindle strictly in order (serial); each
        part's network transfer starts as soon as its read finishes and
        overlaps with the next read.  A part delivery that fails mid-flight
        (injected failure or link outage) is restarted under the service's
        :class:`RetryPolicy` without re-reading the spindle; the report is
        only returned once every part landed.  The process value is a
        :class:`ScatterReport`.
        """
        if len(parts) != len(destinations):
            raise TransferError(
                f"{len(parts)} parts for {len(destinations)} destinations"
            )
        cap = self._flow_cap(streams)
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        span = tracer.start(
            "ftp.scatter", parts=len(parts), mb=sum(p[1] for p in parts)
        )

        policy = self.retry_policy

        def run():
            started = self.env.now
            if self.setup_overhead:
                yield self.env.timeout(self.setup_overhead)
            sends: List[Process] = []
            for (part_name, part_mb), dest in zip(parts, destinations):
                # Serial stage: the single spindle.
                yield source.sequential_read(part_mb)
                salt = next(self._transfer_seq)

                def attempt(part_name=part_name, part_mb=part_mb, dest=dest):
                    if self._consume_failure():
                        # Mid-flight abort: half the transfer time is lost
                        # (same restart model as transfer_file).
                        yield self.network.transfer(
                            source.name, dest.name, part_mb / 2, stream_cap=cap
                        )
                        raise TransferError(
                            f"scatter of {part_name!r} to {dest.name} "
                            f"aborted mid-flight"
                        )
                    stats = yield self.network.transfer(
                        source.name, dest.name, part_mb, stream_cap=cap
                    )
                    yield dest.disk_write(part_mb)
                    dest.store_file(part_name, part_mb)
                    metrics.counter(
                        "ftp_bytes_mb_total", "Payload moved over GridFTP (MB)"
                    ).inc(part_mb)
                    return stats

                def deliver(attempt=attempt, salt=salt):
                    attempt_started = self.env.now
                    last_error: Optional[Exception] = None
                    for attempt_index in range(policy.max_attempts):
                        try:
                            result = yield self.env.process(attempt())
                            return result
                        except (TransferError, LinkDown) as exc:
                            last_error = exc
                            metrics.counter(
                                "ftp_retries_total",
                                "GridFTP transfer attempts that failed "
                                "mid-flight",
                            ).inc()
                            if not policy.should_retry(
                                attempt_index, self.env.now - attempt_started
                            ):
                                break
                            delay = policy.delay(attempt_index, salt)
                            if delay:
                                yield self.env.timeout(delay)
                    metrics.counter(
                        "ftp_failures_total",
                        "GridFTP transfers that exhausted retries",
                    ).inc()
                    raise last_error

                sends.append(
                    self.env.process(
                        tracer.trace_gen(
                            "ftp.part",
                            deliver(),
                            file=part_name,
                            dst=dest.name,
                            mb=part_mb,
                        )
                    )
                )
            done = yield self.env.all_of(sends)
            stats_list = [proc.value for proc in sends]
            self.log.extend(stats_list)
            return ScatterReport(
                started_at=started,
                finished_at=self.env.now,
                per_part=stats_list,
            )

        return self.env.process(tracer.wrap(span, run()))

    def broadcast(
        self,
        source: Node,
        destinations: Sequence[Node],
        name: str,
        size_mb: float,
        streams: Optional[int] = None,
    ) -> Process:
        """Send the same small file (analysis code) to every destination.

        All sends run in parallel; one setup overhead is charged per
        destination (each is its own control channel).  The process value is
        the list of per-destination :class:`TransferStats`.
        """
        tracer = self.obs.tracer
        span = tracer.start(
            "ftp.broadcast", file=name, fanout=len(destinations), mb=size_mb
        )

        def run():
            sends = [
                self.transfer_file(
                    source, dest, name, size_mb, streams=streams
                )
                for dest in destinations
            ]
            yield self.env.all_of(sends)
            return [proc.value for proc in sends]

        return self.env.process(tracer.wrap(span, run()))
