"""Toy Grid Security Infrastructure: CA, proxy certificates, VO authorization.

The paper's client obtains a *Grid proxy* (a short-lived certificate signed
by the user's long-lived identity certificate), mutually authenticates with
the Web Services, and is then *authorized* against the site policy of its
Virtual Organization (§3.1–§3.2).

We reproduce that whole workflow with an HMAC-based toy PKI — the
*protocol shape* (issuance → delegation → chain validation → expiry →
VO policy lookup) is identical to GSI, while the cryptography is
deliberately simple (this is a simulation substrate, not a security
product).

Time for expiry checks is *simulated* time, supplied by the caller (the
services pass ``env.now``), so certificate-lifetime behaviour is fully
testable and deterministic.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class SecurityError(Exception):
    """Raised on any authentication or authorization failure."""


def _hmac(key: bytes, payload: bytes) -> str:
    return hmac.new(key, payload, hashlib.sha256).hexdigest()


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class Certificate:
    """A signed statement binding a *subject* to a verification key.

    ``issuer_chain`` lists subjects from the immediate issuer up to (and
    including) the CA, so proxy chains of any depth can be validated.
    """

    subject: str
    issuer: str
    issuer_chain: Tuple[str, ...]
    not_before: float
    not_after: float
    #: Public half of the key pair (toy: hex token used as HMAC key id).
    public_key: str
    #: Depth of delegation: 0 = identity cert, 1 = first-level proxy, ...
    proxy_depth: int
    signature: str

    def payload(self) -> dict:
        """The signed portion of the certificate."""
        return {
            "subject": self.subject,
            "issuer": self.issuer,
            "issuer_chain": list(self.issuer_chain),
            "not_before": self.not_before,
            "not_after": self.not_after,
            "public_key": self.public_key,
            "proxy_depth": self.proxy_depth,
        }

    def valid_at(self, now: float) -> bool:
        """Whether *now* falls inside the validity window."""
        return self.not_before <= now <= self.not_after


@dataclass
class Credential:
    """A certificate plus its private key — what a party actually holds."""

    certificate: Certificate
    _private_key: bytes

    @property
    def subject(self) -> str:
        """Subject name of the underlying certificate."""
        return self.certificate.subject

    def sign(self, payload: dict) -> str:
        """Sign arbitrary payload with this credential's private key."""
        return _hmac(self._private_key, _canonical(payload))

    def issue_proxy(
        self, now: float, lifetime: float = 12 * 3600.0
    ) -> "Credential":
        """Create a short-lived proxy credential delegated from this one.

        Mirrors ``grid-proxy-init``: the proxy's subject is the identity
        subject with a ``/CN=proxy`` suffix, it is signed by *this*
        credential, and its lifetime is bounded by the parent's.
        """
        if lifetime <= 0:
            raise SecurityError("proxy lifetime must be > 0")
        parent = self.certificate
        if not parent.valid_at(now):
            raise SecurityError(f"parent certificate of {self.subject} expired")
        not_after = min(now + lifetime, parent.not_after)
        private_key = secrets.token_bytes(32)
        public_key = hashlib.sha256(private_key).hexdigest()
        payload = {
            "subject": f"{parent.subject}/CN=proxy",
            "issuer": parent.subject,
            "issuer_chain": [parent.subject, *parent.issuer_chain],
            "not_before": now,
            "not_after": not_after,
            "public_key": public_key,
            "proxy_depth": parent.proxy_depth + 1,
        }
        signature = self.sign(payload)
        cert = Certificate(
            subject=payload["subject"],
            issuer=parent.subject,
            issuer_chain=tuple(payload["issuer_chain"]),
            not_before=now,
            not_after=not_after,
            public_key=public_key,
            proxy_depth=payload["proxy_depth"],
            signature=signature,
        )
        return Credential(cert, private_key)


class CertificateAuthority:
    """Issues identity certificates and validates certificate chains.

    A single CA per simulated grid is enough for the paper's scenario; the
    validation API accepts the full chain of certificates (leaf first) just
    like a TLS/GSI handshake would present it.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._key = secrets.token_bytes(32)
        #: Private keys of issued credentials, kept to verify delegation
        #: signatures (stand-in for real public-key cryptography).
        self._issued_keys: Dict[str, bytes] = {}
        self._revoked: set = set()

    def issue_identity(
        self,
        subject: str,
        now: float,
        lifetime: float = 365 * 24 * 3600.0,
    ) -> Credential:
        """Issue a long-lived identity credential for *subject*."""
        if lifetime <= 0:
            raise SecurityError("lifetime must be > 0")
        private_key = secrets.token_bytes(32)
        public_key = hashlib.sha256(private_key).hexdigest()
        payload = {
            "subject": subject,
            "issuer": self.name,
            "issuer_chain": [self.name],
            "not_before": now,
            "not_after": now + lifetime,
            "public_key": public_key,
            "proxy_depth": 0,
        }
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            issuer_chain=(self.name,),
            not_before=now,
            not_after=now + lifetime,
            public_key=public_key,
            proxy_depth=0,
            signature=_hmac(self._key, _canonical(payload)),
        )
        credential = Credential(cert, private_key)
        self._issued_keys[subject] = private_key
        return credential

    def revoke(self, subject: str) -> None:
        """Add *subject* to the revocation list."""
        self._revoked.add(subject)

    def register_delegation_key(self, subject: str, key: bytes) -> None:
        """Record a proxy's signing key (toy stand-in for public keys)."""
        self._issued_keys[subject] = key

    def validate_chain(self, chain: List[Certificate], now: float) -> str:
        """Validate a certificate chain (leaf first) and return the identity.

        Checks, in GSI order: non-empty chain, every link's validity window,
        signature of each certificate by its issuer, chain continuity
        (each issuer is the next subject, terminating at this CA), and the
        revocation list.  Returns the *identity* subject (depth-0 cert) the
        leaf delegates for.
        """
        if not chain:
            raise SecurityError("empty certificate chain")
        for cert in chain:
            if not cert.valid_at(now):
                raise SecurityError(f"certificate {cert.subject!r} expired")
            if cert.subject in self._revoked:
                raise SecurityError(f"certificate {cert.subject!r} revoked")
        # Continuity + signatures.
        for i, cert in enumerate(chain):
            if cert.proxy_depth != len(chain) - 1 - i:
                raise SecurityError(
                    f"chain depth mismatch at {cert.subject!r}"
                )
            if cert.issuer == self.name:
                expected = _hmac(self._key, _canonical(cert.payload()))
                if not hmac.compare_digest(expected, cert.signature):
                    raise SecurityError(
                        f"bad CA signature on {cert.subject!r}"
                    )
                if i != len(chain) - 1:
                    raise SecurityError("identity certificate not last in chain")
            else:
                if i + 1 >= len(chain):
                    raise SecurityError(
                        f"chain broken: no issuer cert for {cert.subject!r}"
                    )
                issuer_cert = chain[i + 1]
                if issuer_cert.subject != cert.issuer:
                    raise SecurityError(
                        f"chain broken at {cert.subject!r}: issuer "
                        f"{cert.issuer!r} != {issuer_cert.subject!r}"
                    )
                issuer_key = self._issued_keys.get(issuer_cert.subject)
                if issuer_key is None:
                    raise SecurityError(
                        f"unknown issuer key for {issuer_cert.subject!r}"
                    )
                expected = _hmac(issuer_key, _canonical(cert.payload()))
                if not hmac.compare_digest(expected, cert.signature):
                    raise SecurityError(
                        f"bad delegation signature on {cert.subject!r}"
                    )
        identity = chain[-1].subject
        return identity


def build_chain(credential: Credential, *parents: Credential) -> List[Certificate]:
    """Assemble a leaf-first certificate chain from credentials."""
    return [credential.certificate, *(p.certificate for p in parents)]


@dataclass
class SitePolicy:
    """Per-site Grid-VO policy (§2.2: "determined by the Grid-VO policy").

    Parameters
    ----------
    max_engines_per_session:
        Ceiling on analysis engines one session may start.
    interactive_queue:
        Name of the dedicated fast queue sessions are mapped to.
    allowed_vos:
        VOs whose members may use the site.
    """

    max_engines_per_session: int = 16
    interactive_queue: str = "interactive"
    allowed_vos: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.max_engines_per_session < 1:
            raise ValueError("max_engines_per_session must be >= 1")


class VirtualOrganization:
    """A VO: named membership plus role assignments."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._members: Dict[str, str] = {}  # subject -> role

    def add_member(self, subject: str, role: str = "member") -> None:
        """Enroll *subject* with *role* (``member`` or ``admin``)."""
        self._members[subject] = role

    def remove_member(self, subject: str) -> None:
        """Drop *subject* from the VO (no error if absent)."""
        self._members.pop(subject, None)

    def is_member(self, subject: str) -> bool:
        """Whether *subject* belongs to this VO."""
        return subject in self._members

    def role(self, subject: str) -> Optional[str]:
        """The subject's role, or ``None``."""
        return self._members.get(subject)


class AuthorizationService:
    """Maps an authenticated identity to what it may do at the site."""

    def __init__(
        self, vos: List[VirtualOrganization], policy: SitePolicy
    ) -> None:
        self._vos = {vo.name: vo for vo in vos}
        self.policy = policy

    def add_vo(self, vo: VirtualOrganization, allowed: bool = True) -> None:
        """Register another VO; with *allowed*, admit it at this site.

        Multi-tenant sites (fair-share admission, WFQ dispatch) grow
        their VO set at runtime; re-adding an existing name replaces it.
        """
        self._vos[vo.name] = vo
        if allowed and vo.name not in self.policy.allowed_vos:
            self.policy.allowed_vos = (*self.policy.allowed_vos, vo.name)

    def authorize(self, identity: str) -> SitePolicy:
        """Authorize *identity*; returns the effective site policy.

        Raises :class:`SecurityError` if the identity belongs to no allowed
        VO.
        """
        for vo_name in self.policy.allowed_vos:
            vo = self._vos.get(vo_name)
            if vo is not None and vo.is_member(identity):
                return self.policy
        raise SecurityError(
            f"identity {identity!r} not authorized by any allowed VO"
        )

    def vo_of(self, identity: str) -> Optional[str]:
        """Name of the first allowed VO containing *identity*."""
        for vo_name in self.policy.allowed_vos:
            vo = self._vos.get(vo_name)
            if vo is not None and vo.is_member(identity):
                return vo_name
        return None


@dataclass
class SecurityContext:
    """Result of a successful mutual authentication handshake."""

    identity: str
    proxy_subject: str
    established_at: float
    expires_at: float
    session_key: str

    def valid_at(self, now: float) -> bool:
        """Whether the context is still usable at *now*."""
        return now <= self.expires_at


def mutual_authenticate(
    client_chain: List[Certificate],
    service_chain: List[Certificate],
    ca: CertificateAuthority,
    now: float,
) -> SecurityContext:
    """Perform GSI-style mutual authentication between client and service.

    Both sides' chains are validated against the same CA; the resulting
    context carries the *client* identity (the party being authorized) and
    expires when the client proxy does.
    """
    client_identity = ca.validate_chain(client_chain, now)
    ca.validate_chain(service_chain, now)  # client verifies the service too
    leaf = client_chain[0]
    session_key = hashlib.sha256(
        (leaf.signature + service_chain[0].signature).encode()
    ).hexdigest()
    return SecurityContext(
        identity=client_identity,
        proxy_subject=leaf.subject,
        established_at=now,
        expires_at=leaf.not_after,
        session_key=session_key,
    )
