"""Top-level assembly: calibration, the simulated grid site, and experiments.

* :mod:`repro.core.config` — every calibrated constant of the timing model,
  with its provenance in the paper's tables;
* :mod:`repro.core.site` — :class:`~repro.core.site.GridSite`, which builds
  the full simulated deployment of Fig. 2 (network, nodes, scheduler, GRAM,
  security, every manager service) in one call;
* :mod:`repro.core.experiment` — the Table-1/Table-2 experiment drivers
  used by the benchmarks and examples.
"""

from repro.core.batch import BatchResult, run_batch
from repro.core.config import Calibration, DEFAULT_CALIBRATION
from repro.core.experiment import (
    GridBreakdown,
    LocalBreakdown,
    run_grid_experiment,
    run_local_experiment,
)
from repro.core.site import GridSite, SiteConfig

__all__ = [
    "BatchResult",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "GridBreakdown",
    "GridSite",
    "LocalBreakdown",
    "SiteConfig",
    "run_batch",
    "run_grid_experiment",
    "run_local_experiment",
]
