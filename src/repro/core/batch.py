"""Production batch mode: the workflow interactive tuning graduates into.

§1: interactivity exists "to fine tune an analysis that may eventually
become a production batch analysis".  This module closes that loop: a
finalized analysis + dataset run end-to-end with no client in the loop —
engines submitted on the ordinary *batch* queue, no polling, the final
merged tree collected once at the end.

Implementation note: batch mode reuses the entire session machinery (the
paper's point is that the same site serves both), only the queue, the
polling behaviour, and the snapshot cadence differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.aida.tree import ObjectTree
from repro.client.client import IPAClient
from repro.core.site import GridSite
from repro.engine.sandbox import CodeBundle


@dataclass
class BatchResult:
    """Outcome of a batch production run."""

    dataset_id: str
    n_engines: int
    events_processed: int
    submitted_at: float
    finished_at: float
    tree: ObjectTree = field(repr=False, default=None)

    @property
    def wall_seconds(self) -> float:
        """Submission-to-results wall clock (simulated)."""
        return self.finished_at - self.submitted_at


def run_batch(
    site: GridSite,
    credential,
    dataset_id: str,
    source: str,
    parameters: Optional[dict] = None,
    n_engines: Optional[int] = None,
    queue: str = "batch",
) -> BatchResult:
    """Run a production batch analysis and return the merged results.

    Parameters
    ----------
    site, credential:
        The simulated site and the submitting user's identity credential.
    dataset_id:
        Catalog id of the dataset to process.
    source, parameters:
        The finalized analysis code (same bundle format as interactive).
    n_engines:
        Engine count (defaults to the site policy maximum).
    queue:
        Scheduler queue; production work belongs on ``"batch"`` so it never
        competes with interactive sessions on the dedicated queue.
    """
    client = IPAClient(site, credential)
    # Route this session's engines through the requested queue.
    original_queue = site.policy.interactive_queue
    object.__setattr__(site.policy, "interactive_queue", queue)
    outcome: dict = {}

    def scenario():
        env = site.env
        submitted = env.now
        yield from client.obtain_proxy_and_connect(n_engines=n_engines)
        yield from client.select_dataset(dataset_id)
        yield from client.upload_code(source, parameters=parameters)
        yield from client.run()
        # Batch: no interactive polling — wait with a lazy cadence.
        final = yield from client.wait_for_completion(poll_interval=60.0)
        outcome["result"] = BatchResult(
            dataset_id=dataset_id,
            n_engines=client.session.n_engines,
            events_processed=final.progress.events_processed,
            submitted_at=submitted,
            finished_at=env.now,
            tree=final.tree,
        )
        yield from client.close()

    try:
        site.env.run(until=site.env.process(scenario()))
    finally:
        object.__setattr__(site.policy, "interactive_queue", original_queue)
    return outcome["result"]
