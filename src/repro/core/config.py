"""Calibration constants of the timing model, with provenance.

Every number below is fitted to the paper's measurements (Tables 1 and 2,
X = 471 MB, N up to 16) — see EXPERIMENTS.md for the full derivation and
for the places where the paper's own numbers are mutually inconsistent
(its fitted equations do not reproduce its tables; we calibrate to the
tables and reproduce the equations separately in
:mod:`repro.bench.model`).

Derivations (X in MB, N nodes):

* ``wan_bandwidth_mbps`` — Table 1: 471 MB over the WAN in 32 min
  (1920 s) → 0.2453 MB/s.
* ``lan_fetch_bandwidth_mbps`` — Table 2 "move whole": 63 s flat
  → 471/63 = 7.48 MB/s repository→SE.
* ``split_rate_s_per_mb`` — Table 2 "split" ≈ 118 s → 0.25 s/MB (the
  paper's own fit uses 0.25·X as well).
* ``se_disk_mbps`` + ``worker_link_mbps`` — Table 2 "move parts"
  ≈ 46 + 62/N: a serial SE disk pass at 10.24 MB/s (471/46) pipelined
  with per-worker links at 7.6 MB/s (471/62).
* ``local_analysis_rate_s_per_mb`` — Table 1: 13 min (780 s) for 471 MB
  on the 1.7 GHz desktop → 1.656 s/MB.
* ``grid_analysis_rate_s_per_mb`` + ``engine_serial_overhead_s`` —
  Table 2 analysis column fitted as ``57 + 0.5796·X/N`` (matches the
  measured endpoints 330 s @ N=1 and 78 s @ N=16; the middle points are
  noisy in the paper).  The per-worker rate coming out *faster* than the
  desktop rate despite slower clocks is forced by the paper's own
  numbers — most plausibly the local measurement included I/O overheads
  the worker number did not; we keep the two rates as independent
  constants rather than deriving them from clock speeds.
* ``code_stage_overhead_s`` — Table 1: 7 s to stage 15 kB; the transfer
  itself is negligible, so it is almost all fixed service overhead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """Calibrated timing-model constants (see module docstring)."""

    # -- network (MB/s) --------------------------------------------------
    wan_bandwidth_mbps: float = 0.2453
    wan_latency_s: float = 0.1
    lan_fetch_bandwidth_mbps: float = 7.476
    worker_link_mbps: float = 7.597
    lan_latency_s: float = 0.001
    #: Dedicated SE↔SE links between federated sites (third-party
    #: transfers).  Research-network class, an order of magnitude above
    #: the paper's commodity client WAN but well under any LAN.
    intersite_wan_mbps: float = 2.5
    intersite_wan_latency_s: float = 0.05

    # -- storage element ---------------------------------------------------
    se_disk_mbps: float = 10.24
    split_rate_s_per_mb: float = 0.25
    split_per_file_overhead_s: float = 0.2

    # -- code staging ---------------------------------------------------
    code_stage_overhead_s: float = 6.5

    # -- analysis ---------------------------------------------------------
    local_analysis_rate_s_per_mb: float = 1.656
    grid_analysis_rate_s_per_mb: float = 0.5796
    engine_serial_overhead_s: float = 55.0
    engine_startup_s: float = 2.0
    code_load_s: float = 0.5

    # -- services ---------------------------------------------------------
    soap_latency_s: float = 0.25
    rmi_latency_s: float = 0.05
    merge_cost_per_tree_s: float = 0.05
    gram_auth_overhead_s: float = 0.5
    interactive_dispatch_s: float = 1.0
    batch_dispatch_s: float = 30.0

    # -- engine chunking -----------------------------------------------------
    chunk_events: int = 500
    snapshot_every_chunks: int = 1
    #: Engines publish delta snapshots (changed objects only) between full
    #: keyframes; the AIDA manager merges them incrementally.
    delta_snapshots: bool = True
    #: Full-keyframe cadence in delta mode (1 = every snapshot is full).
    keyframe_every_snapshots: int = 8

    def __post_init__(self) -> None:
        for name in (
            "wan_bandwidth_mbps",
            "lan_fetch_bandwidth_mbps",
            "worker_link_mbps",
            "se_disk_mbps",
            "intersite_wan_mbps",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        for name in (
            "split_rate_s_per_mb",
            "local_analysis_rate_s_per_mb",
            "grid_analysis_rate_s_per_mb",
            "engine_serial_overhead_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.chunk_events < 1:
            raise ValueError("chunk_events must be >= 1")
        if self.keyframe_every_snapshots < 1:
            raise ValueError("keyframe_every_snapshots must be >= 1")


#: The calibration used throughout the benchmarks.
DEFAULT_CALIBRATION = Calibration()
