"""Timeline tracer: record and render phase spans on the simulated clock.

Experiments and examples use this to show *where* the session time goes —
an ASCII Gantt of the Fig. 2 pipeline (auth, engine start, fetch, split,
scatter, code, analysis) that makes overlap (or its absence) visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import Environment


@dataclass(frozen=True)
class Span:
    """A named closed interval on the simulated clock."""

    name: str
    start: float
    end: float
    lane: str = ""

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start


class Timeline:
    """Collects spans against an environment's clock.

    Use either the explicit pair::

        timeline.begin("split")
        ...
        timeline.end("split")

    or the context manager::

        with timeline.span("split"):
            ...

    (the context-manager form is for plain code; simulation processes use
    begin/end around their ``yield``\\ s).
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.spans: List[Span] = []
        self._open: Dict[str, float] = {}

    def begin(self, name: str, lane: str = "") -> None:
        """Open a span; nested reuse of the same name is rejected."""
        key = f"{lane}:{name}"
        if key in self._open:
            raise ValueError(f"span {name!r} already open")
        self._open[key] = self.env.now

    def end(self, name: str, lane: str = "") -> Span:
        """Close a span and record it."""
        key = f"{lane}:{name}"
        try:
            start = self._open.pop(key)
        except KeyError:
            raise ValueError(f"span {name!r} was never opened") from None
        span = Span(name=name, start=start, end=self.env.now, lane=lane)
        self.spans.append(span)
        return span

    def span(self, name: str, lane: str = ""):
        """Context manager wrapping begin/end."""
        timeline = self

        class _Ctx:
            def __enter__(self):
                timeline.begin(name, lane)
                return timeline

            def __exit__(self, exc_type, exc, tb):
                timeline.end(name, lane)

        return _Ctx()

    def record(self, name: str, start: float, end: float, lane: str = "") -> None:
        """Add a pre-measured span."""
        if end < start:
            raise ValueError("end must be >= start")
        self.spans.append(Span(name, start, end, lane))

    def total(self, name: str) -> float:
        """Summed duration of all spans with this name."""
        return sum(s.duration for s in self.spans if s.name == name)

    def render(self, width: int = 64) -> str:
        """ASCII Gantt: one row per span, bars scaled to the full extent."""
        if not self.spans:
            return "(empty timeline)"
        t0 = min(s.start for s in self.spans)
        t1 = max(s.end for s in self.spans)
        extent = max(t1 - t0, 1e-12)
        label_width = max(len(s.name) for s in self.spans) + 2
        lines = [
            f"timeline: {t0:.1f} .. {t1:.1f} s "
            f"(1 char = {extent / width:.2f} s)"
        ]
        for span in sorted(self.spans, key=lambda s: (s.start, s.name)):
            lead = int((span.start - t0) / extent * width)
            bar = max(1, int(round(span.duration / extent * width)))
            bar = min(bar, width - lead)
            lines.append(
                f"{span.name.ljust(label_width)}"
                f"|{' ' * lead}{'#' * bar}{' ' * (width - lead - bar)}|"
                f" {span.duration:8.1f} s"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)
