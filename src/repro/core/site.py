"""GridSite: one-call assembly of the full simulated deployment of Fig. 2.

Builds, on a fresh simulation environment:

* the network (desktop —WAN— site; repository —LAN— storage element;
  per-worker LAN links; manager links for code staging and result polling);
* the nodes (desktop, manager, storage element, N workers) and the compute
  element with its batch scheduler (dedicated interactive queue + a slow
  batch queue);
* the security fabric (CA, service credential, VO, site policy, GRAM
  gatekeeper);
* every manager service (catalog, locator, splitter, registry, code
  loader, AIDA manager, session service, control service) registered in a
  :class:`~repro.services.envelope.ServiceContainer`;
* standard catalog content: the ILC simulation datasets of the paper's
  evaluation plus a trading-records dataset for the cross-domain example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import DEFAULT_CALIBRATION, Calibration
from repro.grid.admission import AdmissionController
from repro.grid.gram import GramGatekeeper
from repro.grid.network import Network
from repro.grid.nodes import (
    ComputeElement,
    ManagerNode,
    NodeSpec,
    StorageElement,
    WorkerNode,
)
from repro.grid.scheduler import BatchScheduler, QueueSpec
from repro.grid.security import (
    AuthorizationService,
    CertificateAuthority,
    Credential,
    SitePolicy,
    VirtualOrganization,
)
from repro.grid.transfer import GridFTPService
from repro.obs import Observability
from repro.replica import ReplicaManager
from repro.resilience import (
    DurabilityConfig,
    DurableStore,
    FailureInjector,
    RecoveryConfig,
    RetryPolicy,
)
from repro.services.aida_manager import AIDAManagerService
from repro.services.catalog import DatasetCatalogService, DatasetEntry
from repro.services.codeloader import ManagingClassLoaderService
from repro.services.container import AsyncServiceContainer, ServiceProfile
from repro.services.content import ContentStore
from repro.services.control import ControlService
from repro.services.locator import DatasetLocation, LocatorService
from repro.services.registry import WorkerRegistryService
from repro.services.session import SessionService
from repro.services.splitter import SplitterService
from repro.sim import Environment


@dataclass(frozen=True)
class SiteConfig:
    """Shape of the simulated site.

    Parameters
    ----------
    n_workers:
        Worker-node count (the paper's dedicated queue had 16).
    max_engines_per_session:
        VO policy ceiling (defaults to ``n_workers``).
    merge_fan_in:
        AIDA manager combiner fan-in (``None`` = flat merge).  With a
        fan-in, each session gets a real tiered merge: engines publish
        to leaf combiners which fold incrementally and push combined
        deltas up to the root (see :mod:`repro.services.combiner`).
    merge_grouping:
        How engines map onto leaf combiners: ``"chunk"`` (contiguous
        runs of the sorted engine ids, preserving the flat fold order
        exactly) or ``"worker"`` (group engines sharing a worker node).
    incremental_merge:
        AIDA manager keeps per-engine tree caches and re-merges only
        dirty paths per poll (False = from-scratch merge on every poll,
        the §2.5 bottleneck behaviour).
    session_lifetime:
        WSRF lifetime of session resources in seconds (``None`` =
        immortal).
    enable_recovery:
        Run the session service's heartbeat monitor + partition
        re-dispatch (the failure model documented in
        :mod:`repro.services.session`).
    heartbeat_interval / heartbeat_timeout:
        Engine liveness cadence and the silence after which an engine is
        declared dead.
    retry_jitter / retry_seed:
        Deterministic jitter applied to the site's GridFTP retry backoff
        (de-synchronizes concurrent retries without losing repeatability).
    enable_observability:
        Record spans and metrics across every tier (see :mod:`repro.obs`).
        Off by default: instrumentation then routes through shared null
        objects and costs almost nothing.
    enable_replica_cache:
        Run the replica catalog + per-worker caches (see
        :mod:`repro.replica`): repeated stages of the same dataset reuse
        SE part files and worker-cached parts instead of re-running the
        fetch/split/scatter pipeline.  A fully cold stage is timed
        identically either way.
    worker_cache_mb:
        Per-worker cache capacity in MB (``None`` = unbounded).
    replica_ttl_s:
        Optional staleness TTL for unpinned cached parts.
    enable_durability:
        Run the durable session layer (write-ahead journal + periodic
        checkpoints on a crash-surviving store), enabling cold-start
        recovery after a ``service-crash`` fault.  Durable writes charge
        zero simulated time, so enabling it never perturbs calibration.
    checkpoint_every_s:
        Period of the per-session checkpoint loop in simulated seconds.
    journal_fsync:
        Sync every journal record as written (off = records are only
        guaranteed durable at the next checkpoint's sync, so a crash can
        lose a journal tail).
    checkpoint_keyframe_every:
        Every Nth checkpoint is a full keyframe; the rest are deltas
        against the previous one.
    slo_poll_p99_s / slo_window_s:
        Default interactivity SLO installed when observability is on:
        p99 of merged-result poll latency must stay under
        ``slo_poll_p99_s`` over a sliding ``slo_window_s`` window.
    service_concurrency:
        Dispatch slots per container service (``None`` = unbounded
        direct dispatch, the pre-request-loop behaviour).  When set,
        every registered service gets a bounded request queue drained
        by this many cooperative loops.
    service_queue_depth:
        Bound on each service's request queue (``None`` = unbounded).
        A full queue refuses new requests with ``RetryAfter``.
    service_dispatch_overhead_s:
        Fixed per-request cost charged by a dispatch slot before the
        handler runs (connection demultiplexing, envelope parsing).
    poll_coalescing:
        Merge concurrent ``merged`` polls of one session into a single
        incremental merge (replies are bit-identical either way).
    poll_coalesce_window_s:
        Minimum time a coalescing leader holds the merge open so that
        near-simultaneous pollers can join it (0 = only exactly
        concurrent polls coalesce).
    max_concurrent_engines:
        Site-wide cap on engines running across all sessions (``None``
        = no admission control).  When set, session admits go through
        a per-VO weighted fair-share queue.
    vo_shares:
        Relative fair-share weights per VO name (unlisted VOs get 1.0).
    admission_queue_depth:
        Admissions each VO may queue while over quota; beyond that the
        site refuses with ``RetryAfter`` backpressure (0 = never queue).
    admission_retry_after_s:
        Base client back-off hint attached to admission refusals
        (scaled by the backlog actually waiting).
    """

    n_workers: int = 16
    max_engines_per_session: Optional[int] = None
    merge_fan_in: Optional[int] = None
    merge_grouping: str = "chunk"
    incremental_merge: bool = True
    session_lifetime: Optional[float] = None
    enable_recovery: bool = True
    heartbeat_interval: float = 5.0
    heartbeat_timeout: float = 20.0
    retry_jitter: float = 0.25
    retry_seed: int = 0
    enable_observability: bool = False
    enable_replica_cache: bool = True
    worker_cache_mb: Optional[float] = None
    replica_ttl_s: Optional[float] = None
    enable_durability: bool = True
    checkpoint_every_s: float = 30.0
    journal_fsync: bool = True
    checkpoint_keyframe_every: int = 4
    slo_poll_p99_s: float = 0.25
    slo_window_s: float = 60.0
    service_concurrency: Optional[int] = None
    service_queue_depth: Optional[int] = None
    service_dispatch_overhead_s: float = 0.0
    poll_coalescing: bool = True
    poll_coalesce_window_s: float = 0.0
    max_concurrent_engines: Optional[int] = None
    vo_shares: Optional[Dict[str, float]] = None
    admission_queue_depth: int = 0
    admission_retry_after_s: float = 5.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if (
            self.max_concurrent_engines is not None
            and self.max_concurrent_engines < 1
        ):
            raise ValueError("max_concurrent_engines must be >= 1")
        if self.merge_grouping not in ("chunk", "worker"):
            raise ValueError(
                f"unknown merge_grouping {self.merge_grouping!r}"
            )


class GridSite:
    """The assembled simulated grid site plus its service container.

    By default a site is a self-contained world: it creates its own
    simulation environment, network, CA, and observability, with the
    paper's literal host names (``desktop``/``repository``/``manager``/
    ``se``/``w0``...).  For multi-site federation the constructor accepts
    a shared ``env`` + ``network`` (plus optionally a shared ``ca`` and
    ``obs``) and a site ``name``: the site's hosts are then prefixed
    (``{name}-manager``, ``{name}-se``, ``{name}-w0``...), its hosts carry
    ``site={name}`` labels, and the shared client/archive endpoints
    (``desktop``, ``repository``) are created only if absent.  With
    ``name=None`` the assembly is bit-identical to the historical
    single-site build.

    ``attach_repository`` controls whether this site's SE gets a LAN link
    to the shared archive host; a federation attaches the repository to
    one site only so that archive links never become a WAN bypass between
    sites.
    """

    def __init__(
        self,
        config: SiteConfig = SiteConfig(),
        calibration: Calibration = DEFAULT_CALIBRATION,
        *,
        env: Optional[Environment] = None,
        network: Optional[Network] = None,
        name: Optional[str] = None,
        ca: Optional[CertificateAuthority] = None,
        obs: Optional[Observability] = None,
        attach_repository: bool = True,
    ) -> None:
        if (env is None) != (network is None):
            raise ValueError("env and network must be provided together")
        self.config = config
        self.calibration = calibration
        cal = calibration
        self.env = env if env is not None else Environment()
        env = self.env
        #: Site label on the shared topology ("slac" for the historical
        #: standalone build).
        self.name = name if name is not None else "slac"
        prefix = f"{name}-" if name is not None else ""
        #: Set by the federation layer while this site's WAN boundary is
        #: severed; the federated client turns it into brokered failover.
        self.partitioned = False
        self.obs = (
            obs
            if obs is not None
            else Observability(env, enabled=config.enable_observability)
        )

        # -- network ---------------------------------------------------
        net = network if network is not None else Network(env)
        self.network = net
        mgr_host = f"{prefix}manager"
        se_host = f"{prefix}se"
        if "desktop" not in net.hosts:
            net.add_host("desktop", site="home")
        if "repository" not in net.hosts:
            net.add_host("repository", site="archive")
        net.add_host(mgr_host, site=self.name)
        net.add_host(se_host, site=self.name)
        if "wan-desktop-repo" not in net.links:
            net.add_link(
                "wan-desktop-repo",
                "desktop",
                "repository",
                bandwidth=cal.wan_bandwidth_mbps,
                latency=cal.wan_latency_s,
            )
        net.add_link(
            f"wan-desktop-{mgr_host}",
            "desktop",
            mgr_host,
            bandwidth=cal.wan_bandwidth_mbps,
            latency=cal.wan_latency_s,
        )
        if attach_repository:
            net.add_link(
                f"lan-repo-{se_host}",
                "repository",
                se_host,
                bandwidth=cal.lan_fetch_bandwidth_mbps,
                latency=cal.lan_latency_s,
            )
        net.add_link(
            f"lan-{mgr_host}-{se_host}",
            mgr_host,
            se_host,
            bandwidth=cal.lan_fetch_bandwidth_mbps,
            latency=cal.lan_latency_s,
        )

        # -- nodes ---------------------------------------------------------
        worker_spec = NodeSpec(
            cpu_mhz=866.0, cores=1, disk_read_mbps=400.0, disk_write_mbps=400.0
        )
        se_spec = NodeSpec(
            cpu_mhz=1000.0,
            cores=1,
            disk_read_mbps=cal.se_disk_mbps,
            disk_write_mbps=cal.se_disk_mbps,
        )
        self.desktop = ManagerNode(
            env, "desktop", NodeSpec(cpu_mhz=1700.0, disk_read_mbps=400, disk_write_mbps=400)
        )
        self.manager = ManagerNode(
            env, mgr_host, NodeSpec(cpu_mhz=2000.0, disk_read_mbps=400, disk_write_mbps=400)
        )
        self.storage = StorageElement(env, se_host, se_spec)
        self.workers: List[WorkerNode] = []
        for index in range(config.n_workers):
            worker_host = f"{prefix}w{index}"
            net.add_host(worker_host, site=self.name)
            net.add_link(
                f"lan-{se_host}-{worker_host}",
                se_host,
                worker_host,
                bandwidth=cal.worker_link_mbps,
                latency=cal.lan_latency_s,
            )
            net.add_link(
                f"lan-{mgr_host}-{worker_host}",
                mgr_host,
                worker_host,
                bandwidth=cal.worker_link_mbps,
                latency=cal.lan_latency_s,
            )
            self.workers.append(WorkerNode(env, worker_host, worker_spec))

        # -- scheduler + security ----------------------------------------
        self.element = ComputeElement(f"{self.name}-osg", self.workers)
        self.scheduler = BatchScheduler(env, self.element, obs=self.obs)
        self.scheduler.add_queue(
            QueueSpec(
                "interactive",
                priority=1,
                dispatch_latency=cal.interactive_dispatch_s,
            )
        )
        self.scheduler.add_queue(
            QueueSpec("batch", priority=10, dispatch_latency=cal.batch_dispatch_s)
        )
        self.ca = ca if ca is not None else CertificateAuthority("ipa-ca")
        service_subject = (
            "/O=SLAC/CN=ipa-service"
            if name is None
            else f"/O={self.name}/CN=ipa-service"
        )
        self.service_credential = self.ca.issue_identity(
            service_subject, now=0.0
        )
        self.vo = VirtualOrganization("ilc")
        #: All VOs known at this site, by name (grown by :meth:`add_vo`).
        self._vos: Dict[str, VirtualOrganization] = {"ilc": self.vo}
        max_engines = (
            config.max_engines_per_session
            if config.max_engines_per_session is not None
            else config.n_workers
        )
        self.policy = SitePolicy(
            max_engines_per_session=max_engines,
            interactive_queue="interactive",
            allowed_vos=("ilc",),
        )
        self.authz = AuthorizationService([self.vo], self.policy)
        self.gram = GramGatekeeper(
            env,
            self.scheduler,
            self.ca,
            self.authz,
            auth_overhead=cal.gram_auth_overhead_s,
            obs=self.obs,
        )

        # -- transfer + services --------------------------------------------
        self.ftp = GridFTPService(
            env,
            net,
            setup_overhead=0.2,
            retry_policy=RetryPolicy(
                max_attempts=3,
                base_delay=1.0,
                multiplier=2.0,
                max_delay=30.0,
                jitter=config.retry_jitter,
                seed=config.retry_seed,
            ),
            obs=self.obs,
        )
        # Async container: profiled services get a bounded request queue
        # drained by cooperative dispatch loops; unprofiled services keep
        # the original direct-dispatch timing bit for bit.
        self.container = AsyncServiceContainer(
            env,
            soap_latency=cal.soap_latency_s,
            rmi_latency=cal.rmi_latency_s,
            obs=self.obs,
        )
        self.catalog = DatasetCatalogService()
        self.locator = LocatorService(site_id=self.name)
        self.splitter = SplitterService(
            env,
            self.storage,
            self.ftp,
            split_rate=cal.split_rate_s_per_mb,
            per_file_overhead=cal.split_per_file_overhead_s,
            obs=self.obs,
        )
        self.registry = WorkerRegistryService(env, obs=self.obs)
        self.codeloader = ManagingClassLoaderService(
            env,
            self.manager,
            self.ftp,
            stage_overhead=cal.code_stage_overhead_s,
            obs=self.obs,
        )
        self.aida = AIDAManagerService(
            env,
            merge_cost_per_tree=cal.merge_cost_per_tree_s,
            fan_in=config.merge_fan_in,
            obs=self.obs,
            incremental=config.incremental_merge,
            coalesce=config.poll_coalescing,
            coalesce_window_s=config.poll_coalesce_window_s,
            grouping=config.merge_grouping,
        )
        self.content_store = ContentStore()
        # Replica catalog + per-worker caches (warm re-staging, §4's
        # repeat-analysis scenario); None disables caching entirely.
        self.replicas = (
            ReplicaManager(
                env,
                net,
                self.storage,
                self.workers,
                capacity_mb=config.worker_cache_mb,
                ttl_s=config.replica_ttl_s,
                se_disk_mbps=cal.se_disk_mbps,
                obs=self.obs,
            )
            if config.enable_replica_cache
            else None
        )
        if self.replicas is not None:
            # Dataset re-registration bumps the generation, invalidating
            # every replica cut from the previous content.
            self.locator.add_update_hook(self.replicas.dataset_updated)
        # Durable manager-node disk for the session journal + checkpoints;
        # survives service crashes (minus any unsynced tail).
        self.durable_store = (
            DurableStore() if config.enable_durability else None
        )
        # Per-VO fair-share admission: caps engines running site-wide and
        # queues (or refuses) session admits weighted by VO share.
        self.admission = (
            AdmissionController(
                env,
                capacity=config.max_concurrent_engines,
                shares=config.vo_shares,
                queue_depth=config.admission_queue_depth,
                retry_after_s=config.admission_retry_after_s,
                obs=self.obs,
            )
            if config.max_concurrent_engines is not None
            else None
        )
        self.session_service = SessionService(
            env=env,
            gram=self.gram,
            registry=self.registry,
            catalog=self.catalog,
            locator=self.locator,
            splitter=self.splitter,
            codeloader=self.codeloader,
            aida=self.aida,
            ftp=self.ftp,
            storage=self.storage,
            content_store=self.content_store,
            calibration=cal,
            session_lifetime=config.session_lifetime,
            recovery=(
                RecoveryConfig(
                    heartbeat_interval=config.heartbeat_interval,
                    heartbeat_timeout=config.heartbeat_timeout,
                )
                if config.enable_recovery
                else None
            ),
            obs=self.obs,
            replicas=self.replicas,
            durability=(
                DurabilityConfig(
                    store=self.durable_store,
                    checkpoint_every_s=config.checkpoint_every_s,
                    journal_fsync=config.journal_fsync,
                    checkpoint_keyframe_every=config.checkpoint_keyframe_every,
                )
                if config.enable_durability
                else None
            ),
            container=self.container,
            admission=self.admission,
        )
        # Bounded per-service request loops (opt-in: the default site has
        # unbounded direct dispatch, matching the seed's calibration).
        if config.service_concurrency is not None:
            profile = ServiceProfile(
                concurrency=config.service_concurrency,
                queue_depth=config.service_queue_depth,
                dispatch_overhead_s=config.service_dispatch_overhead_s,
            )
            services = ["control", "session", "aida"]
            if config.merge_fan_in is not None:
                # The combiner tier is a distinct request class: give it
                # its own dispatch slots so engine->combiner publishes
                # cannot head-of-line-block root polls.
                services.append("combiner")
            for service in services:
                self.container.configure_service(service, profile)
        # Deterministic fault injection for chaos tests and benchmarks.
        self.injector = FailureInjector(
            env,
            self.scheduler,
            network=net,
            replicas=self.replicas,
            session_service=self.session_service,
            obs=self.obs,
        )
        # Default interactivity SLO (§2.3 "limits of human tolerance"):
        # merged-result polls must stay sub-interactive.  Signals are fed
        # by the service envelope as "<service>.<operation>".
        if self.obs.enabled:
            from repro.obs import SLOPolicy

            # Federated sites share one Observability; only the first
            # site to assemble installs the policy.
            if not any(
                p.name == "poll-latency" for p in self.obs.slo.policies
            ):
                self.obs.slo.add_policy(
                    SLOPolicy(
                        name="poll-latency",
                        signal="aida.merged",
                        objective=config.slo_poll_p99_s,
                        quantile=0.99,
                        window_s=config.slo_window_s,
                    )
                )
        self.control = ControlService(
            env,
            self.ca,
            self.service_credential,
            self.session_service,
            self.container,
            site_name=self.name,
            replicas=self.replicas,
        )

        # Expose services through the container (what the client calls).
        self.container.register_object("catalog", self.catalog)
        self.container.register_object("locator", self.locator)
        self.container.register(
            "control",
            {
                "create_session": self.control.create_session,
                "close_session": self.control.close_session,
                "reconnect_session": self.control.reconnect_session,
                "stats": self.control.stats,
            },
        )
        self.container.register(
            "session",
            {
                "add_dataset": self.session_service.add_dataset,
                "stage_code": self.session_service.stage_code,
                "reload_code": self.session_service.reload_code,
                "control": self.session_service.control,
                "status": self.session_service.status,
            },
        )
        self.container.register(
            "aida",
            {
                "merged": lambda session_id, client_id=None: self.aida.merged(
                    session_id, client_id=client_id
                ),
                "snapshot_count": self.aida.snapshot_count,
            },
        )

    # -- users ---------------------------------------------------------
    def add_vo(self, name: str) -> VirtualOrganization:
        """Register (and allow) another VO at this site; idempotent."""
        existing = self._vos.get(name)
        if existing is not None:
            return existing
        vo = VirtualOrganization(name)
        self._vos[name] = vo
        self.authz.add_vo(vo)
        return vo

    def enroll_user(
        self, subject: str, role: str = "member", vo: Optional[str] = None
    ) -> Credential:
        """Add a VO member (default VO: ``ilc``) and issue their credential."""
        target = self.vo if vo is None else self.add_vo(vo)
        target.add_member(subject, role)
        return self.ca.issue_identity(subject, now=self.env.now)

    # -- datasets ---------------------------------------------------------
    def register_dataset(
        self,
        dataset_id: str,
        path: str,
        size_mb: float,
        n_events: int,
        metadata: Optional[dict] = None,
        content: Optional[dict] = None,
        origin_host: Optional[str] = "repository",
        kind: str = "gridftp",
    ) -> DatasetEntry:
        """Register a dataset in catalog + locator in one step.

        ``origin_host`` of ``"repository"`` means the file must first be
        fetched over the site LAN to the SE ("move whole"); ``None`` means
        it is already resident on the SE.  ``kind="database"`` registers a
        contiguous-record DB location (no fetch, no split pass — §3.4).
        """
        if kind == "database":
            origin_host = None  # range queries serve directly from the DB
        entry = DatasetEntry(
            dataset_id=dataset_id,
            path=path,
            metadata=dict(metadata or {}),
            size_mb=size_mb,
            n_events=n_events,
            content=dict(content or {"kind": "ilc", "seed": 0}),
        )
        self.catalog.register(entry)
        self.locator.add_location(
            DatasetLocation(
                dataset_id=dataset_id,
                kind=kind,
                host=self.storage.name,
                path=f"/store/{dataset_id}.ipad",
                size_mb=size_mb,
                n_events=n_events,
                splitter_host=self.storage.name,
                origin_host=origin_host,
            )
        )
        return entry

    def register_standard_datasets(self) -> None:
        """Register the paper-scale ILC datasets plus the trading dataset."""
        self.register_dataset(
            "ilc-zh-500gev",
            "/ilc/simulation/zh-500gev",
            size_mb=471.0,
            n_events=40_000,
            metadata={
                "experiment": "ilc",
                "process": "zh",
                "energy": 500,
                "detector": "sid",
                "format": "ipad",
            },
            content={"kind": "ilc", "seed": 500},
        )
        self.register_dataset(
            "ilc-zh-small",
            "/ilc/simulation/zh-small",
            size_mb=10.0,
            n_events=2_000,
            metadata={"experiment": "ilc", "process": "zh", "energy": 500},
            content={"kind": "ilc", "seed": 501},
        )
        self.register_dataset(
            "trading-nyse-2006",
            "/business/trading/nyse-2006",
            size_mb=50.0,
            n_events=5_000,
            metadata={"domain": "finance", "venue": "nyse", "year": 2006},
            content={"kind": "trading", "seed": 77, "trades_per_day": 50},
            origin_host=None,
        )
