"""Experiment drivers for the paper's evaluation (Tables 1-2, Figure 5).

``run_grid_experiment`` executes the *entire* IPA pipeline on a freshly
built simulated site — authentication, session creation, dataset staging,
code staging, analysis with live merging — and reports the same wall-clock
phase breakdown the paper tabulates.  ``run_local_experiment`` is the
baseline: WAN download to the desktop plus single-CPU analysis.

Events are processed for real (numpy) while the clock advances per the
calibrated model, so every experiment also yields genuine physics output
(the Higgs mass histogram) alongside its timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.aida.tree import ObjectTree
from repro.analysis import higgs
from repro.core.config import DEFAULT_CALIBRATION, Calibration
from repro.core.site import GridSite, SiteConfig
from repro.client.client import IPAClient
from repro.engine.runner import run_local
from repro.engine.sandbox import CodeBundle
from repro.obs import Observability
from repro.services.content import ContentStore


#: Nominal events per MB (the 471 MB reference dataset at 40k events).
EVENTS_PER_MB = 40_000 / 471.0


@dataclass
class GridBreakdown:
    """Phase timing of one grid experiment (simulated seconds)."""

    size_mb: float
    n_nodes: int
    session_setup: float
    move_whole: float
    split: float
    move_parts: float
    stage_code: float
    analysis: float
    tree: Optional[ObjectTree] = field(default=None, repr=False)
    #: The site's observability layer (tracer + metrics) when the run was
    #: made with ``observability=True``; ``None`` otherwise.
    obs: Optional[Observability] = field(default=None, repr=False)

    @property
    def stage_dataset(self) -> float:
        """Table 1's "Stage Dataset" = move whole + split + move parts."""
        return self.move_whole + self.split + self.move_parts

    @property
    def total(self) -> float:
        """End-to-end session time, excluding session setup."""
        return self.stage_dataset + self.stage_code + self.analysis

    @property
    def total_with_setup(self) -> float:
        """End-to-end including session creation."""
        return self.session_setup + self.total


@dataclass
class LocalBreakdown:
    """Phase timing of the local-analysis baseline (simulated seconds)."""

    size_mb: float
    download: float
    analysis: float
    tree: Optional[ObjectTree] = field(default=None, repr=False)

    @property
    def total(self) -> float:
        """Download + analysis."""
        return self.download + self.analysis


def _default_events(size_mb: float, events_per_mb: Optional[float]) -> int:
    scale = EVENTS_PER_MB if events_per_mb is None else events_per_mb
    return max(200, int(size_mb * scale))


def run_grid_experiment(
    size_mb: float,
    n_nodes: int,
    events_per_mb: Optional[float] = None,
    analysis_source: str = higgs.SOURCE,
    analysis_parameters: Optional[dict] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    merge_fan_in: Optional[int] = None,
    split_strategy: str = "by-events",
    poll_interval: float = 5.0,
    content_seed: int = 500,
    collect_tree: bool = True,
    observability: bool = False,
) -> GridBreakdown:
    """Run the full grid pipeline once and return its phase breakdown.

    Parameters
    ----------
    size_mb, n_nodes:
        The sweep variables of Tables 1-2 and Figure 5.
    events_per_mb:
        Event density; defaults to the reference dataset's (lower it to
        speed up large sweeps — timing is driven by ``size_mb``, not the
        event count).
    analysis_source, analysis_parameters:
        The staged user code (defaults to the Higgs search).
    observability:
        Trace the whole run (one span tree rooted at ``session``) and
        record metrics; the layer is then returned on ``GridBreakdown.obs``
        for export/reconciliation.
    """
    site = GridSite(
        SiteConfig(
            n_workers=n_nodes,
            merge_fan_in=merge_fan_in,
            enable_observability=observability,
        ),
        calibration,
    )
    n_events = _default_events(size_mb, events_per_mb)
    site.register_dataset(
        "exp-dataset",
        "/exp/dataset",
        size_mb=size_mb,
        n_events=n_events,
        metadata={"experiment": "ilc"},
        content={"kind": "ilc", "seed": content_seed},
    )
    user = site.enroll_user("/O=ILC/CN=experimenter")
    client = IPAClient(site, user)
    breakdown = GridBreakdown(
        size_mb=size_mb,
        n_nodes=n_nodes,
        session_setup=0.0,
        move_whole=0.0,
        split=0.0,
        move_parts=0.0,
        stage_code=0.0,
        analysis=0.0,
    )

    tracer = site.obs.tracer

    def scenario():
        env = site.env
        start = env.now
        setup_span = tracer.child("phase.session_setup", phase="session_setup")
        yield from client.obtain_proxy_and_connect(n_engines=n_nodes)
        setup_span.finish()
        breakdown.session_setup = env.now - start

        staged = yield from client.select_dataset(
            "exp-dataset", strategy=split_strategy
        )
        breakdown.move_whole = staged.fetch_seconds
        breakdown.split = staged.split_seconds
        breakdown.move_parts = staged.move_parts_seconds

        breakdown.stage_code = yield from client.upload_code(
            analysis_source, parameters=analysis_parameters
        )

        run_started = env.now
        analysis_span = tracer.child("phase.analysis", phase="analysis")
        yield from client.run()
        result = yield from client.wait_for_completion(poll_interval=poll_interval)
        analysis_span.finish()
        breakdown.analysis = env.now - run_started
        if collect_tree:
            breakdown.tree = result.tree
        yield from client.close()

    # The root of the session's single trace tree: every service call made
    # by the client propagates this context through its envelope.
    root = tracer.trace_gen(
        "session", scenario(), size_mb=size_mb, n_nodes=n_nodes
    )
    site.env.run(until=site.env.process(root))
    if observability:
        breakdown.obs = site.obs
    return breakdown


def run_local_experiment(
    size_mb: float,
    events_per_mb: Optional[float] = None,
    analysis_source: str = higgs.SOURCE,
    analysis_parameters: Optional[dict] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    content_seed: int = 500,
    compute_results: bool = False,
) -> LocalBreakdown:
    """Run the local baseline: WAN download + single-CPU analysis.

    With ``compute_results=True`` the events are actually analyzed (same
    deterministic content as the grid run with the same seed) so results
    can be compared bin by bin.
    """
    site = GridSite(SiteConfig(n_workers=1), calibration)
    env = site.env
    breakdown = LocalBreakdown(size_mb=size_mb, download=0.0, analysis=0.0)
    n_events = _default_events(size_mb, events_per_mb)

    def scenario():
        start = env.now
        # WAN download of the whole dataset to the desktop.
        yield site.network.transfer("repository", "desktop", size_mb)
        yield site.desktop.disk_write(size_mb)
        breakdown.download = env.now - start
        # Single-processor analysis at the desktop's calibrated rate.
        start = env.now
        yield env.timeout(size_mb * calibration.local_analysis_rate_s_per_mb)
        breakdown.analysis = env.now - start

    env.run(until=env.process(scenario()))
    if compute_results:
        content = ContentStore()
        batch = content.events_for(
            {"kind": "ilc", "seed": content_seed}, 0, n_events
        )
        bundle = CodeBundle(
            analysis_source, parameters=dict(analysis_parameters or {})
        )
        breakdown.tree = run_local(bundle, batch)
    return breakdown
