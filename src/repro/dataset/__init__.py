"""Dataset substrate: event model, synthetic generator, binary format, splitting.

The paper analyzed 471 MB of simulated International-Linear-Collider events
(record-based: one independent physics event per record).  We cannot ship
that proprietary simulation output, so this package provides the closest
synthetic equivalent (DESIGN.md §2):

* a vectorized four-vector toolkit (:mod:`repro.dataset.physics`);
* a batched event model (:mod:`repro.dataset.events`) — events are jets and
  leptons with four-momenta plus a ground-truth process label;
* a seeded generator (:mod:`repro.dataset.generator`) producing
  e+e- → ZH signal (m_H = 120 GeV, H → bb) over WW / ZZ / qq backgrounds
  with Gaussian detector smearing — the dijet invariant-mass spectrum shows
  a Higgs peak exactly like the paper's sample analysis;
* a seekable binary record format (:mod:`repro.dataset.format`) whose
  per-batch index makes splitting by event range cheap;
* split strategies (:mod:`repro.dataset.split`) used by the Splitter
  service (§3.4).
"""

from repro.dataset.events import Event, EventBatch, PROCESS_CODES, PROCESS_NAMES
from repro.dataset.format import DatasetReader, DatasetWriter, FormatError
from repro.dataset.generator import GeneratorConfig, ILCEventGenerator
from repro.dataset.split import SplitPart, SplitPlan, plan_split

__all__ = [
    "DatasetReader",
    "DatasetWriter",
    "Event",
    "EventBatch",
    "FormatError",
    "GeneratorConfig",
    "ILCEventGenerator",
    "PROCESS_CODES",
    "PROCESS_NAMES",
    "SplitPart",
    "SplitPlan",
    "plan_split",
]
