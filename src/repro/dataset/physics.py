"""Vectorized relativistic kinematics (natural units, GeV).

All functions operate on numpy arrays of shape ``(..., )`` for each
component, so whole event batches are processed without Python loops (per
the HPC guide: vectorize the hot path).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Particle masses in GeV.
MASS_HIGGS = 120.0  # the 2006-era light-Higgs benchmark used in LC studies
MASS_Z = 91.1876
MASS_W = 80.385
MASS_B = 4.18
MASS_MUON = 0.1057


def invariant_mass(
    e: np.ndarray, px: np.ndarray, py: np.ndarray, pz: np.ndarray
) -> np.ndarray:
    """Invariant mass sqrt(max(E^2 - |p|^2, 0)) of four-vectors."""
    m2 = e * e - px * px - py * py - pz * pz
    return np.sqrt(np.clip(m2, 0.0, None))


def pair_mass(
    e1, px1, py1, pz1, e2, px2, py2, pz2
) -> np.ndarray:
    """Invariant mass of the sum of two four-vectors."""
    return invariant_mass(e1 + e2, px1 + px2, py1 + py2, pz1 + pz2)


def momentum(px: np.ndarray, py: np.ndarray, pz: np.ndarray) -> np.ndarray:
    """Magnitude of the three-momentum."""
    return np.sqrt(px * px + py * py + pz * pz)


def transverse_momentum(px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """pT = sqrt(px^2 + py^2)."""
    return np.sqrt(px * px + py * py)


def pseudorapidity(px: np.ndarray, py: np.ndarray, pz: np.ndarray) -> np.ndarray:
    """eta = atanh(pz / |p|), clipped for numerical safety."""
    p = momentum(px, py, pz)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.clip(np.where(p > 0, pz / p, 0.0), -1 + 1e-15, 1 - 1e-15)
    return np.arctanh(ratio)


def azimuth(px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """phi = atan2(py, px) in (-pi, pi]."""
    return np.arctan2(py, px)


def two_body_momentum(parent_mass: float, m1: float, m2: float) -> float:
    """Momentum of either daughter in a two-body decay at rest.

    Standard Källén formula: ``p* = sqrt(lambda(M^2, m1^2, m2^2)) / (2 M)``.
    Raises ``ValueError`` if the decay is kinematically closed.
    """
    if parent_mass <= 0:
        raise ValueError("parent_mass must be > 0")
    if parent_mass < m1 + m2:
        raise ValueError(
            f"decay closed: M={parent_mass} < m1+m2={m1 + m2}"
        )
    term1 = parent_mass**2 - (m1 + m2) ** 2
    term2 = parent_mass**2 - (m1 - m2) ** 2
    return float(np.sqrt(term1 * term2) / (2 * parent_mass))


def isotropic_directions(
    n: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unit vectors uniformly distributed on the sphere (shape (n,) each)."""
    cos_theta = rng.uniform(-1.0, 1.0, n)
    sin_theta = np.sqrt(1.0 - cos_theta**2)
    phi = rng.uniform(-np.pi, np.pi, n)
    return sin_theta * np.cos(phi), sin_theta * np.sin(phi), cos_theta


def boost(
    e: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    pz: np.ndarray,
    bx: np.ndarray,
    by: np.ndarray,
    bz: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lorentz-boost four-vectors by velocity (bx, by, bz) (vectorized).

    Follows the standard active boost: a particle at rest acquires the
    boost velocity.  ``|b|`` must be < 1 elementwise.
    """
    b2 = bx * bx + by * by + bz * bz
    if np.any(b2 >= 1.0):
        raise ValueError("boost velocity must satisfy |b| < 1")
    gamma = 1.0 / np.sqrt(1.0 - b2)
    bp = bx * px + by * py + bz * pz
    # gamma2 = (gamma - 1)/b^2, well-defined as b -> 0.
    gamma2 = np.where(b2 > 0, (gamma - 1.0) / np.where(b2 > 0, b2, 1.0), 0.0)
    factor = gamma2 * bp + gamma * e
    return (
        gamma * (e + bp),
        px + factor * bx,
        py + factor * by,
        pz + factor * bz,
    )


def two_body_decay(
    parent_e: np.ndarray,
    parent_px: np.ndarray,
    parent_py: np.ndarray,
    parent_pz: np.ndarray,
    m1: float,
    m2: float,
    rng: np.random.Generator,
) -> Tuple[Tuple[np.ndarray, ...], Tuple[np.ndarray, ...]]:
    """Decay each parent four-vector into two daughters (vectorized).

    Daughters are emitted isotropically in the parent rest frame and boosted
    to the lab.  Returns two (e, px, py, pz) tuples.
    """
    parent_e = np.asarray(parent_e, dtype=float)
    n = parent_e.shape[0]
    parent_mass = invariant_mass(parent_e, parent_px, parent_py, parent_pz)
    if np.any(parent_mass < m1 + m2 - 1e-9):
        raise ValueError("some parents below decay threshold")
    term1 = parent_mass**2 - (m1 + m2) ** 2
    term2 = parent_mass**2 - (m1 - m2) ** 2
    pstar = np.sqrt(np.clip(term1 * term2, 0.0, None)) / (2 * parent_mass)
    ux, uy, uz = isotropic_directions(n, rng)
    e1 = np.sqrt(pstar**2 + m1**2)
    e2 = np.sqrt(pstar**2 + m2**2)
    # Velocity of the parent.
    bx = parent_px / parent_e
    by = parent_py / parent_e
    bz = parent_pz / parent_e
    d1 = boost(e1, pstar * ux, pstar * uy, pstar * uz, bx, by, bz)
    d2 = boost(e2, -pstar * ux, -pstar * uy, -pstar * uz, bx, by, bz)
    return d1, d2


def smear_energies(
    e: np.ndarray,
    rng: np.random.Generator,
    stochastic: float = 0.6,
    constant: float = 0.02,
) -> np.ndarray:
    """Apply calorimeter-style Gaussian smearing to energies.

    Resolution ``sigma/E = stochastic / sqrt(E) (+) constant`` — the 60%/sqrt(E)
    jet-energy resolution typical of 2006-era LC detector studies.
    Energies stay positive.
    """
    e = np.asarray(e, dtype=float)
    sigma = e * np.sqrt(stochastic**2 / np.clip(e, 1e-9, None) + constant**2)
    smeared = rng.normal(e, sigma)
    return np.clip(smeared, 1e-6, None)
