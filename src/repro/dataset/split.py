"""Dataset splitting strategies for the Splitter service (§3.4).

The paper's splitter "will import the dataset from the actual location and
split it into a pre-configured number of approximately equal parts", one
per analysis engine.  Two strategies are provided and ablated in
``benchmarks/bench_splitter.py``:

* ``by-events`` — equal event counts per part (simple, but parts can have
  unequal byte sizes when event sizes vary);
* ``by-bytes`` — part boundaries chosen so byte sizes are approximately
  equal (balances transfer time; event counts can differ).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.dataset.events import EventBatch
from repro.dataset.format import DatasetReader, DatasetWriter


@dataclass(frozen=True)
class SplitPart:
    """One part of a split plan: an event range plus its estimated size."""

    index: int
    start_event: int
    stop_event: int
    est_size_mb: float

    @property
    def n_events(self) -> int:
        """Events in this part."""
        return self.stop_event - self.start_event


@dataclass(frozen=True)
class SplitPlan:
    """A complete split of a dataset into parts."""

    strategy: str
    parts: List[SplitPart]

    @property
    def n_parts(self) -> int:
        """Number of parts."""
        return len(self.parts)

    @property
    def total_events(self) -> int:
        """Total events covered by the plan."""
        return sum(p.n_events for p in self.parts)

    def skew(self) -> float:
        """Max/mean part size ratio (1.0 = perfectly balanced)."""
        sizes = [p.est_size_mb for p in self.parts]
        mean = float(np.mean(sizes)) if sizes else 0.0
        return max(sizes) / mean if mean > 0 else 1.0


def plan_split(
    reader: DatasetReader,
    n_parts: int,
    strategy: str = "by-events",
    event_sizes: Optional[np.ndarray] = None,
) -> SplitPlan:
    """Compute a split plan over *reader*'s events.

    Parameters
    ----------
    n_parts:
        Desired number of parts (>= 1).  If the dataset has fewer events
        than parts, trailing parts are empty ranges.
    strategy:
        ``"by-events"`` or ``"by-bytes"``.
    event_sizes:
        Optional per-event byte sizes (for by-bytes); derived from particle
        multiplicities when omitted.

    Raises
    ------
    ValueError
        On unknown strategies or invalid part counts.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    n_events = reader.n_events
    total_mb = reader.size_mb

    if strategy == "by-events":
        bounds = np.linspace(0, n_events, n_parts + 1).astype(int)
    elif strategy == "by-bytes":
        if event_sizes is None:
            event_sizes = _estimate_event_sizes(reader)
        cumulative = np.concatenate([[0.0], np.cumsum(event_sizes)])
        targets = np.linspace(0, cumulative[-1], n_parts + 1)
        bounds = np.searchsorted(cumulative, targets, side="left")
        bounds[0], bounds[-1] = 0, n_events
        bounds = np.maximum.accumulate(bounds)
    else:
        raise ValueError(f"unknown split strategy {strategy!r}")

    per_event_mb = total_mb / n_events if n_events else 0.0
    if strategy == "by-bytes" and event_sizes is not None and n_events:
        total_units = float(np.sum(event_sizes))
        parts = []
        for index in range(n_parts):
            lo, hi = int(bounds[index]), int(bounds[index + 1])
            units = float(np.sum(event_sizes[lo:hi]))
            size = total_mb * (units / total_units) if total_units else 0.0
            parts.append(SplitPart(index, lo, hi, size))
    else:
        parts = [
            SplitPart(
                index,
                int(bounds[index]),
                int(bounds[index + 1]),
                per_event_mb * (int(bounds[index + 1]) - int(bounds[index])),
            )
            for index in range(n_parts)
        ]
    return SplitPlan(strategy=strategy, parts=parts)


def _estimate_event_sizes(reader: DatasetReader) -> np.ndarray:
    """Per-event size proxy: particle multiplicity (+ fixed overhead)."""
    sizes: List[np.ndarray] = []
    for batch in reader.iter_batches():
        counts = np.diff(batch.offsets).astype(float)
        sizes.append(counts + 2.0)  # header fields per event
    return np.concatenate(sizes) if sizes else np.zeros(0)


def write_split_parts(
    reader: DatasetReader,
    plan: SplitPlan,
    out_dir: Union[str, Path],
    base_name: str = "part",
) -> List[Path]:
    """Materialize a plan into per-part dataset files.

    Each part file carries the parent metadata plus its part index and
    event range, so an engine can verify it was handed the right slice.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for part in plan.parts:
        path = out_dir / f"{base_name}-{part.index:04d}.ipad"
        meta = dict(reader.meta)
        meta.update(
            {
                "part_index": part.index,
                "part_of": plan.n_parts,
                "event_range": [part.start_event, part.stop_event],
            }
        )
        with DatasetWriter(path, meta=meta) as writer:
            if part.n_events:
                writer.write_batch(
                    reader.read_range(part.start_event, part.stop_event)
                )
        paths.append(path)
    return paths
