"""Seekable, splittable binary record format for event datasets.

Layout (little-endian)::

    magic   b"IPAD"            4 bytes
    version uint32             currently 1
    meta_len uint64 + meta     JSON metadata (dataset name, counts, ...)
    batch blocks ...           each self-describing (see _write_batch)
    index block                JSON: byte offset + event range per batch
    index_len uint64
    magic   b"DAPI"            trailing magic

The per-batch index is what makes the Splitter service cheap: any event
range can be located and read without scanning the whole file, mirroring
how record-based physics formats (LCIO et al.) support splitting (§3.4).
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dataset.events import EventBatch

MAGIC_HEAD = b"IPAD"
MAGIC_TAIL = b"DAPI"
VERSION = 1

_ARRAYS: Tuple[Tuple[str, np.dtype], ...] = (
    ("event_ids", np.dtype("<i8")),
    ("process", np.dtype("<i2")),
    ("weights", np.dtype("<f8")),
    ("offsets", np.dtype("<i8")),
    ("pdg", np.dtype("<i4")),
    ("e", np.dtype("<f8")),
    ("px", np.dtype("<f8")),
    ("py", np.dtype("<f8")),
    ("pz", np.dtype("<f8")),
)


class FormatError(Exception):
    """Raised on malformed dataset files."""


class DatasetWriter:
    """Streams event batches into a dataset file.

    Use as a context manager::

        with DatasetWriter(path, meta={"name": "ilc-zh"}) as writer:
            for batch in generator.stream(100_000):
                writer.write_batch(batch)
    """

    def __init__(self, path: Union[str, Path], meta: Optional[dict] = None) -> None:
        self.path = Path(path)
        self.meta = dict(meta or {})
        self._file = open(self.path, "wb")
        self._index: List[dict] = []
        self._events_written = 0
        self._closed = False
        self._file.write(MAGIC_HEAD)
        self._file.write(struct.pack("<I", VERSION))
        meta_blob = json.dumps(self.meta).encode()
        self._file.write(struct.pack("<Q", len(meta_blob)))
        self._file.write(meta_blob)

    def write_batch(self, batch: EventBatch) -> None:
        """Append one batch (empty batches are skipped)."""
        if self._closed:
            raise FormatError("writer already closed")
        if len(batch) == 0:
            return
        offset = self._file.tell()
        lengths = []
        for name, dtype in _ARRAYS:
            arr = np.ascontiguousarray(getattr(batch, name), dtype=dtype)
            lengths.append(len(arr))
        self._file.write(struct.pack("<" + "Q" * len(lengths), *lengths))
        for name, dtype in _ARRAYS:
            arr = np.ascontiguousarray(getattr(batch, name), dtype=dtype)
            self._file.write(arr.tobytes())
        self._index.append(
            {
                "offset": offset,
                "first_event": self._events_written,
                "n_events": len(batch),
            }
        )
        self._events_written += len(batch)

    def close(self) -> None:
        """Write the index/footer and close the file (idempotent)."""
        if self._closed:
            return
        index_blob = json.dumps(
            {"batches": self._index, "n_events": self._events_written}
        ).encode()
        self._file.write(index_blob)
        self._file.write(struct.pack("<Q", len(index_blob)))
        self._file.write(MAGIC_TAIL)
        self._file.close()
        self._closed = True

    @property
    def events_written(self) -> int:
        """Number of events appended so far."""
        return self._events_written

    def __enter__(self) -> "DatasetWriter":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.close()


class DatasetReader:
    """Random-access reader over a dataset file written by DatasetWriter."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        if self._file.read(4) != MAGIC_HEAD:
            raise FormatError(f"{self.path}: bad magic")
        (version,) = struct.unpack("<I", self._file.read(4))
        if version != VERSION:
            raise FormatError(f"{self.path}: unsupported version {version}")
        (meta_len,) = struct.unpack("<Q", self._file.read(8))
        self.meta: dict = json.loads(self._file.read(meta_len))
        # Footer: ... index_blob, index_len (8), magic (4).
        self._file.seek(-12, 2)
        (index_len,) = struct.unpack("<Q", self._file.read(8))
        if self._file.read(4) != MAGIC_TAIL:
            raise FormatError(f"{self.path}: bad trailing magic (truncated?)")
        self._file.seek(-(12 + index_len), 2)
        index = json.loads(self._file.read(index_len))
        self._batches: List[dict] = index["batches"]
        self.n_events: int = index["n_events"]

    # -- sizing ------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """File size in bytes."""
        return self.path.stat().st_size

    @property
    def size_mb(self) -> float:
        """File size in MB (10^6 bytes, matching the paper's units)."""
        return self.size_bytes / 1e6

    @property
    def n_batches(self) -> int:
        """Number of batch blocks in the file."""
        return len(self._batches)

    def batch_ranges(self) -> List[Tuple[int, int]]:
        """Event ranges [first, first+n) of each batch block."""
        return [
            (b["first_event"], b["first_event"] + b["n_events"])
            for b in self._batches
        ]

    # -- reading ------------------------------------------------------------
    def _read_batch_block(self, entry: dict) -> EventBatch:
        self._file.seek(entry["offset"])
        lengths = struct.unpack(
            "<" + "Q" * len(_ARRAYS), self._file.read(8 * len(_ARRAYS))
        )
        arrays = {}
        for (name, dtype), length in zip(_ARRAYS, lengths):
            blob = self._file.read(int(length) * dtype.itemsize)
            if len(blob) != int(length) * dtype.itemsize:
                raise FormatError(f"{self.path}: truncated batch block")
            arrays[name] = np.frombuffer(blob, dtype=dtype).copy()
        return EventBatch(**arrays)

    def read_batch(self, index: int) -> EventBatch:
        """Read batch block *index*."""
        if not 0 <= index < len(self._batches):
            raise IndexError(f"batch index {index} out of range")
        return self._read_batch_block(self._batches[index])

    def read_range(self, start: int, stop: int) -> EventBatch:
        """Read events [start, stop) as one batch, using the index to seek."""
        if not 0 <= start <= stop <= self.n_events:
            raise IndexError(
                f"bad range [{start}, {stop}) of {self.n_events} events"
            )
        picked: List[EventBatch] = []
        for entry in self._batches:
            first = entry["first_event"]
            last = first + entry["n_events"]
            if last <= start or first >= stop:
                continue
            batch = self._read_batch_block(entry)
            lo = max(start, first) - first
            hi = min(stop, last) - first
            picked.append(batch.slice(lo, hi))
        return EventBatch.concatenate(picked)

    def iter_batches(self) -> Iterator[EventBatch]:
        """Iterate over all batch blocks in order."""
        for entry in self._batches:
            yield self._read_batch_block(entry)

    def read_all(self) -> EventBatch:
        """Load the whole dataset as one batch."""
        return EventBatch.concatenate(list(self.iter_batches()))

    def close(self) -> None:
        """Close the underlying file."""
        self._file.close()

    def __enter__(self) -> "DatasetReader":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<DatasetReader {self.path.name!r} events={self.n_events} "
            f"size={self.size_mb:.2f} MB>"
        )


def write_dataset(
    path: Union[str, Path],
    batches: Sequence[EventBatch],
    meta: Optional[dict] = None,
) -> Path:
    """Convenience: write *batches* to *path* and return the path."""
    with DatasetWriter(path, meta=meta) as writer:
        for batch in batches:
            writer.write_batch(batch)
    return Path(path)
