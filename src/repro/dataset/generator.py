"""Synthetic International-Linear-Collider event generator.

Produces the workload of the paper's sample analysis — "a Java algorithm
that looks for Higgs Bosons in simulated Linear Collider data" (§4) — as
the closest synthetic equivalent of the LCIO simulation files hosted at
SLAC:

* **signal** ``e+e- -> Z H`` at sqrt(s) = 500 GeV: the Z and H are produced
  back-to-back with the exact two-body momentum, then decayed — H -> b bbar
  (two jets at m_H = 120 GeV), Z -> q qbar (two jets at m_Z);
* **backgrounds** ``WW`` and ``ZZ`` (four jets from two bosons) and
  continuum ``q qbar`` (two high-energy jets);
* every final-state jet is smeared with a calorimeter-style resolution, so
  reconstructed dijet masses form realistic peaks over combinatorial
  background.

Everything is driven by a seeded :class:`numpy.random.Generator` for exact
reproducibility, and generation is fully vectorized over events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.dataset.events import PROCESS_CODES, EventBatch
from repro.dataset.physics import (
    MASS_HIGGS,
    MASS_W,
    MASS_Z,
    isotropic_directions,
    smear_energies,
    two_body_decay,
    two_body_momentum,
)

#: PDG-style label we give reconstructed jets.
JET_PDG = 81


@dataclass(frozen=True)
class GeneratorConfig:
    """Physics and mixture settings for the generator.

    Parameters
    ----------
    sqrt_s:
        Collider center-of-mass energy in GeV.
    higgs_mass:
        Signal Higgs mass (the 2006 benchmark value of 120 GeV).
    fractions:
        Mixture of processes; must sum to 1.
    smear_stochastic, smear_constant:
        Jet-energy resolution terms.
    """

    sqrt_s: float = 500.0
    higgs_mass: float = MASS_HIGGS
    fractions: Tuple[Tuple[str, float], ...] = (
        ("zh", 0.15),
        ("ww", 0.35),
        ("zz", 0.20),
        ("qq", 0.30),
    )
    smear_stochastic: float = 0.6
    smear_constant: float = 0.02

    def __post_init__(self) -> None:
        if self.sqrt_s <= 0:
            raise ValueError("sqrt_s must be > 0")
        if self.higgs_mass + MASS_Z >= self.sqrt_s:
            raise ValueError("ZH production closed at this sqrt_s")
        names = [name for name, _ in self.fractions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate process in fractions")
        for name, fraction in self.fractions:
            if name not in PROCESS_CODES:
                raise ValueError(f"unknown process {name!r}")
            if fraction < 0:
                raise ValueError("fractions must be >= 0")
        total = sum(f for _, f in self.fractions)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1 (got {total})")


class ILCEventGenerator:
    """Seeded, vectorized generator of synthetic LC physics events.

    Parameters
    ----------
    config:
        Physics configuration.
    seed:
        RNG seed; the same seed always produces the same events.
    """

    def __init__(
        self, config: GeneratorConfig = GeneratorConfig(), seed: int = 0
    ) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        self._next_event_id = 0

    # ------------------------------------------------------------------
    def generate(self, n_events: int) -> EventBatch:
        """Generate a batch of *n_events* mixed-process events."""
        if n_events < 0:
            raise ValueError("n_events must be >= 0")
        if n_events == 0:
            return EventBatch.empty()
        rng = self._rng
        names = [name for name, _ in self.config.fractions]
        probs = np.array([f for _, f in self.config.fractions])
        choice = rng.choice(len(names), size=n_events, p=probs)

        sub_batches: List[Tuple[np.ndarray, EventBatch]] = []
        for index, name in enumerate(names):
            mask = choice == index
            count = int(mask.sum())
            if count == 0:
                continue
            maker = getattr(self, f"_make_{name}")
            sub_batches.append((np.nonzero(mask)[0], maker(count)))

        # Re-interleave to the original event order for realism.
        order = np.concatenate([positions for positions, _ in sub_batches])
        merged = EventBatch.concatenate([batch for _, batch in sub_batches])
        perm = np.argsort(order, kind="stable")
        reordered = _permute_batch(merged, perm)
        reordered.event_ids[:] = np.arange(
            self._next_event_id, self._next_event_id + n_events
        )
        self._next_event_id += n_events
        return reordered

    def stream(self, n_events: int, batch_size: int = 5000) -> Iterator[EventBatch]:
        """Yield batches until *n_events* have been produced."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        remaining = n_events
        while remaining > 0:
            take = min(batch_size, remaining)
            yield self.generate(take)
            remaining -= take

    # -- process builders ----------------------------------------------
    def _two_boson_jets(
        self, n: int, mass_a: float, mass_b: float, process: str
    ) -> EventBatch:
        """Events with two bosons back-to-back, each decaying to two jets."""
        rng = self._rng
        roots = self.config.sqrt_s
        p = two_body_momentum(roots, mass_a, mass_b)
        ux, uy, uz = isotropic_directions(n, rng)
        ea = np.full(n, np.sqrt(p * p + mass_a * mass_a))
        eb = np.full(n, np.sqrt(p * p + mass_b * mass_b))
        a = (ea, p * ux, p * uy, p * uz)
        b = (eb, -p * ux, -p * uy, -p * uz)
        j1, j2 = two_body_decay(*a, 0.0, 0.0, rng)
        j3, j4 = two_body_decay(*b, 0.0, 0.0, rng)
        return self._jets_to_batch([j1, j2, j3, j4], process)

    def _make_zh(self, n: int) -> EventBatch:
        """Signal: Z H with H -> bb and Z -> qq (four jets)."""
        return self._two_boson_jets(n, self.config.higgs_mass, MASS_Z, "zh")

    def _make_ww(self, n: int) -> EventBatch:
        """Background: W pair to four jets."""
        return self._two_boson_jets(n, MASS_W, MASS_W, "ww")

    def _make_zz(self, n: int) -> EventBatch:
        """Background: Z pair to four jets."""
        return self._two_boson_jets(n, MASS_Z, MASS_Z, "zz")

    def _make_qq(self, n: int) -> EventBatch:
        """Background: continuum q qbar — two back-to-back jets."""
        rng = self._rng
        # Radiative return spreads the effective energy below sqrt(s).
        e_jet = self.config.sqrt_s / 2 * rng.uniform(0.5, 1.0, n)
        ux, uy, uz = isotropic_directions(n, rng)
        j1 = (e_jet, e_jet * ux, e_jet * uy, e_jet * uz)
        j2 = (e_jet, -e_jet * ux, -e_jet * uy, -e_jet * uz)
        return self._jets_to_batch([j1, j2], "qq")

    # -- helpers --------------------------------------------------------
    def _jets_to_batch(
        self,
        jets: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
        process: str,
    ) -> EventBatch:
        """Smear jets and pack one event per row of the jet arrays."""
        rng = self._rng
        n = len(jets[0][0])
        k = len(jets)
        e = np.empty((n, k))
        px = np.empty((n, k))
        py = np.empty((n, k))
        pz = np.empty((n, k))
        for column, (je, jx, jy, jz) in enumerate(jets):
            scale = (
                smear_energies(
                    je,
                    rng,
                    self.config.smear_stochastic,
                    self.config.smear_constant,
                )
                / np.clip(je, 1e-12, None)
            )
            e[:, column] = je * scale
            px[:, column] = jx * scale
            py[:, column] = jy * scale
            pz[:, column] = jz * scale
        offsets = np.arange(n + 1, dtype=np.int64) * k
        return EventBatch(
            event_ids=np.zeros(n, dtype=np.int64),  # assigned by generate()
            process=np.full(n, PROCESS_CODES[process], dtype=np.int16),
            weights=np.ones(n),
            offsets=offsets,
            pdg=np.full(n * k, JET_PDG, dtype=np.int32),
            e=e.ravel(),
            px=px.ravel(),
            py=py.ravel(),
            pz=pz.ravel(),
        )


def _permute_batch(batch: EventBatch, perm: np.ndarray) -> EventBatch:
    """Reorder a batch's events by *perm* (array of source indices)."""
    counts = np.diff(batch.offsets)
    new_counts = counts[perm]
    new_offsets = np.concatenate([[0], np.cumsum(new_counts)])
    n_particles = int(batch.offsets[-1])
    # Build the particle gather index.
    gather = np.empty(n_particles, dtype=np.int64)
    position = 0
    for src in perm:
        lo, hi = int(batch.offsets[src]), int(batch.offsets[src + 1])
        gather[position:position + (hi - lo)] = np.arange(lo, hi)
        position += hi - lo
    return EventBatch(
        batch.event_ids[perm],
        batch.process[perm],
        batch.weights[perm],
        new_offsets,
        batch.pdg[gather],
        batch.e[gather],
        batch.px[gather],
        batch.py[gather],
        batch.pz[gather],
    )
