"""Batched event model: particles with four-momenta plus process labels.

Events are stored in **batches** — flat numpy arrays with per-event offsets
— so the analysis hot path (invariant masses over thousands of events)
stays vectorized, while :class:`Event` offers a convenient per-record view
for user analysis code, matching the paper's "the analysis code accepts the
records from the dataset" contract (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Ground-truth physics process codes carried by each event.
PROCESS_CODES: Dict[str, int] = {
    "zh": 0,       # e+e- -> Z H   (signal)
    "ww": 1,       # e+e- -> W+W-  (background)
    "zz": 2,       # e+e- -> Z Z   (background)
    "qq": 3,       # e+e- -> q qbar (background)
}
#: Inverse mapping of :data:`PROCESS_CODES`.
PROCESS_NAMES: Dict[int, str] = {v: k for k, v in PROCESS_CODES.items()}


@dataclass(frozen=True)
class Event:
    """A per-record view over one event in a batch.

    Attributes expose the particle content as numpy array slices (no
    copies): ``e``, ``px``, ``py``, ``pz`` and integer ``pdg`` codes; jets
    are labelled pdg=81, leptons by their PDG codes.
    """

    event_id: int
    process: int
    weight: float
    pdg: np.ndarray
    e: np.ndarray
    px: np.ndarray
    py: np.ndarray
    pz: np.ndarray

    @property
    def n_particles(self) -> int:
        """Number of particles in the event."""
        return len(self.pdg)

    @property
    def process_name(self) -> str:
        """Human-readable process label."""
        return PROCESS_NAMES.get(self.process, f"unknown({self.process})")

    def jets(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(e, px, py, pz) of the jet-like particles (pdg == 81)."""
        mask = self.pdg == 81
        return self.e[mask], self.px[mask], self.py[mask], self.pz[mask]

    def total_energy(self) -> float:
        """Scalar sum of particle energies."""
        return float(self.e.sum())


class EventBatch:
    """A contiguous block of events stored as flat arrays.

    Layout: ``offsets`` has length ``n_events + 1``; particles of event *i*
    occupy slots ``offsets[i]:offsets[i+1]`` of the flat particle arrays.
    """

    def __init__(
        self,
        event_ids: np.ndarray,
        process: np.ndarray,
        weights: np.ndarray,
        offsets: np.ndarray,
        pdg: np.ndarray,
        e: np.ndarray,
        px: np.ndarray,
        py: np.ndarray,
        pz: np.ndarray,
    ) -> None:
        self.event_ids = np.asarray(event_ids, dtype=np.int64)
        self.process = np.asarray(process, dtype=np.int16)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.pdg = np.asarray(pdg, dtype=np.int32)
        self.e = np.asarray(e, dtype=np.float64)
        self.px = np.asarray(px, dtype=np.float64)
        self.py = np.asarray(py, dtype=np.float64)
        self.pz = np.asarray(pz, dtype=np.float64)
        self._validate()

    def _validate(self) -> None:
        n = len(self.event_ids)
        if not (len(self.process) == len(self.weights) == n):
            raise ValueError("per-event arrays disagree in length")
        if len(self.offsets) != n + 1:
            raise ValueError(f"offsets must have length {n + 1}")
        if n and self.offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        n_particles = int(self.offsets[-1]) if n else 0
        for name in ("pdg", "e", "px", "py", "pz"):
            if len(getattr(self, name)) != n_particles:
                raise ValueError(
                    f"particle array {name!r} has wrong length"
                )

    # -- sizing ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.event_ids)

    @property
    def n_particles(self) -> int:
        """Total particles across all events."""
        return int(self.offsets[-1]) if len(self) else 0

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the payload arrays."""
        return sum(
            getattr(self, name).nbytes
            for name in (
                "event_ids",
                "process",
                "weights",
                "offsets",
                "pdg",
                "e",
                "px",
                "py",
                "pz",
            )
        )

    # -- access ------------------------------------------------------------
    def event(self, index: int) -> Event:
        """Per-record view of event *index* (0-based within the batch)."""
        if not 0 <= index < len(self):
            raise IndexError(f"event index {index} out of range")
        lo, hi = int(self.offsets[index]), int(self.offsets[index + 1])
        return Event(
            event_id=int(self.event_ids[index]),
            process=int(self.process[index]),
            weight=float(self.weights[index]),
            pdg=self.pdg[lo:hi],
            e=self.e[lo:hi],
            px=self.px[lo:hi],
            py=self.py[lo:hi],
            pz=self.pz[lo:hi],
        )

    def __iter__(self) -> Iterator[Event]:
        for index in range(len(self)):
            yield self.event(index)

    def slice(self, start: int, stop: int) -> "EventBatch":
        """Sub-batch of events [start, stop) with re-based offsets."""
        if not 0 <= start <= stop <= len(self):
            raise IndexError(f"bad slice [{start}, {stop}) of {len(self)}")
        p_lo = int(self.offsets[start])
        p_hi = int(self.offsets[stop])
        return EventBatch(
            self.event_ids[start:stop],
            self.process[start:stop],
            self.weights[start:stop],
            self.offsets[start:stop + 1] - p_lo,
            self.pdg[p_lo:p_hi],
            self.e[p_lo:p_hi],
            self.px[p_lo:p_hi],
            self.py[p_lo:p_hi],
            self.pz[p_lo:p_hi],
        )

    # -- combination ----------------------------------------------------------
    @staticmethod
    def concatenate(batches: Sequence["EventBatch"]) -> "EventBatch":
        """Concatenate batches into one (event order preserved)."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return EventBatch.empty()
        offsets = [np.asarray([0], dtype=np.int64)]
        base = 0
        for batch in batches:
            offsets.append(batch.offsets[1:] + base)
            base += batch.offsets[-1]
        return EventBatch(
            np.concatenate([b.event_ids for b in batches]),
            np.concatenate([b.process for b in batches]),
            np.concatenate([b.weights for b in batches]),
            np.concatenate(offsets),
            np.concatenate([b.pdg for b in batches]),
            np.concatenate([b.e for b in batches]),
            np.concatenate([b.px for b in batches]),
            np.concatenate([b.py for b in batches]),
            np.concatenate([b.pz for b in batches]),
        )

    @staticmethod
    def empty() -> "EventBatch":
        """A batch with zero events."""
        z = np.zeros(0)
        return EventBatch(z, z, z, np.zeros(1), z, z, z, z, z)

    @staticmethod
    def from_events(
        records: Sequence[Tuple[int, int, float, Sequence[Tuple[int, float, float, float, float]]]]
    ) -> "EventBatch":
        """Build a batch from per-event particle tuples.

        Each record is ``(event_id, process, weight, particles)`` with
        particles as ``(pdg, e, px, py, pz)`` tuples.  Intended for tests
        and small hand-built datasets; the generator builds arrays directly.
        """
        event_ids, process, weights = [], [], []
        offsets = [0]
        pdg: List[int] = []
        e: List[float] = []
        px: List[float] = []
        py: List[float] = []
        pz: List[float] = []
        for event_id, proc, weight, particles in records:
            event_ids.append(event_id)
            process.append(proc)
            weights.append(weight)
            for p in particles:
                pdg.append(p[0])
                e.append(p[1])
                px.append(p[2])
                py.append(p[3])
                pz.append(p[4])
            offsets.append(len(pdg))
        return EventBatch(
            np.asarray(event_ids),
            np.asarray(process),
            np.asarray(weights),
            np.asarray(offsets),
            np.asarray(pdg),
            np.asarray(e),
            np.asarray(px),
            np.asarray(py),
            np.asarray(pz),
        )

    def __repr__(self) -> str:
        return f"<EventBatch events={len(self)} particles={self.n_particles}>"
