"""FederatedClient: broker-routed sessions with transparent failover.

Wraps :class:`~repro.client.client.IPAClient` behind the federation's
:class:`~repro.federation.broker.SessionBroker`:

- ``connect`` ranks candidate sites and walks the list — pre-migrating
  the hinted dataset when asked, then opening the session — falling
  through on ``RetryAfter``/setup failures until one site accepts;
- every delegated operation first checks the bound site's
  ``partitioned`` flag (the control plane is simulated in-process, so a
  severed WAN boundary must be surfaced explicitly) and, with
  ``auto_failover``, reacts to :class:`SitePartitioned` /
  ``ServiceUnavailable`` / transport ``Fault`` by re-brokering to the
  next-ranked site and replaying the completed workflow steps
  (reconnect → re-select → re-upload → re-run) before retrying the
  interrupted operation.

Replay relies on results being reproducible from the dataset + code
(deterministic content generators), which is what the bit-identical
acceptance tests pin down.
"""

from __future__ import annotations

from typing import Optional

from repro.client.client import ClientError, IPAClient
from repro.federation.errors import FederationError, SitePartitioned
from repro.resilience.faults import ServiceUnavailable
from repro.resilience.retry import RetryPolicy
from repro.services.envelope import Fault, RetryAfter


class FederatedClient:
    """Analysis client bound to a federation instead of one site."""

    def __init__(
        self,
        federation,
        credential,
        client_id: Optional[str] = None,
        auto_failover: bool = True,
    ) -> None:
        self.federation = federation
        self.env = federation.env
        self.credential = credential
        self.client_id = client_id or credential.subject
        self.auto_failover = auto_failover
        self.site = None
        self._client: Optional[IPAClient] = None
        # connect() arguments, kept for re-brokering on failover.
        self._n_engines: Optional[int] = None
        self._dataset_hint: Optional[str] = None
        self._vo: Optional[str] = None
        self._migrate = True
        self._admission_retry: Optional[RetryPolicy] = None
        # Completed workflow steps, replayed on the failover site.
        self._dataset: Optional[tuple] = None
        self._code: Optional[tuple] = None
        self._running = False

    # -- introspection ---------------------------------------------------
    @property
    def site_name(self) -> Optional[str]:
        return self.site.name if self.site is not None else None

    @property
    def session(self):
        return self._client.session if self._client is not None else None

    @property
    def staged(self):
        return self._client.staged if self._client is not None else None

    # -- connection ------------------------------------------------------
    def connect(
        self,
        n_engines: Optional[int] = None,
        dataset_hint: Optional[str] = None,
        vo: Optional[str] = None,
        site: Optional[str] = None,
        migrate: bool = True,
        admission_retry: Optional[RetryPolicy] = None,
    ):
        """Generator op: broker a session to the best-ranked site.

        ``site=`` pins the choice to one site (no fallback); otherwise
        every unpartitioned site is tried best-score-first.  With
        ``migrate=True`` and a *dataset_hint*, the replication policy
        makes the dataset whole-resident at a candidate before the
        session opens there, so staging runs warm off the local SE.
        """
        self._n_engines = n_engines
        self._dataset_hint = dataset_hint
        self._vo = vo
        self._migrate = migrate
        self._admission_retry = admission_retry
        fed = self.federation
        resolved_vo = vo if vo is not None else self._default_vo()
        if site is not None:
            pinned = fed.broker.score(site, dataset_hint, n_engines, resolved_vo)
            if pinned is None:
                raise FederationError(f"site {site!r} is partitioned")
            ranked = [pinned]
        else:
            ranked = fed.broker.rank(dataset_hint, n_engines, resolved_vo)
        if not ranked:
            raise FederationError("no unpartitioned site available")
        last_error: Optional[BaseException] = None
        for score in ranked:
            target = fed.site(score.site)
            try:
                if migrate and dataset_hint is not None:
                    yield from fed.policy.ensure_resident(
                        dataset_hint, score.site
                    )
                inner = IPAClient(
                    target, self.credential, client_id=self.client_id
                )
                inner.obtain_proxy()
                info = yield from inner.connect(
                    n_engines,
                    dataset_hint=dataset_hint,
                    admission_retry=admission_retry,
                )
            except (
                RetryAfter,
                ServiceUnavailable,
                Fault,
                FederationError,
            ) as exc:
                last_error = exc
                fed.note_fallback(score.site, type(exc).__name__)
                continue
            self.site = target
            self._client = inner
            fed.note_brokered(score, self.client_id)
            return info
        raise FederationError(
            "every candidate site refused the session"
        ) from last_error

    def _default_vo(self) -> str:
        for site in self.federation.sites.values():
            vo = site.authz.vo_of(self.credential.subject)
            if vo is not None:
                return vo
        return "ilc"

    # -- failover core ---------------------------------------------------
    def _require(self) -> IPAClient:
        if self._client is None:
            raise ClientError("not connected; call connect() first")
        return self._client

    def _check_reachable(self) -> None:
        if self.site is not None and self.site.partitioned:
            raise SitePartitioned(
                f"site {self.site.name!r} is partitioned from the WAN"
            )

    def failover(self, reason: str = "manual"):
        """Generator op: re-broker and replay completed workflow steps.

        The old site's session is abandoned where it stands (its
        engines are reclaimed by lifetime expiry or on heal); the new
        site gets a fresh session brought to the same point: dataset
        re-selected, code re-uploaded, run resumed.
        """
        fed = self.federation
        dead = self.site_name
        self.site = None
        self._client = None
        info = yield from self.connect(
            self._n_engines,
            dataset_hint=self._dataset_hint,
            vo=self._vo,
            migrate=self._migrate,
            admission_retry=self._admission_retry,
        )
        if dead is not None:
            fed.note_failover(dead, self.site.name, self.client_id, reason)
        if self._dataset is not None:
            yield from self._client.select_dataset(*self._dataset)
        if self._code is not None:
            yield from self._client.upload_code(*self._code)
        if self._running:
            yield from self._client.run()
        return info

    def _call(self, op):
        """Generator op: run *op(client)*, failing over when allowed."""
        attempts = len(self.federation.sites) + 1
        last_error: Optional[BaseException] = None
        for _ in range(attempts):
            client = self._require()
            try:
                self._check_reachable()
                result = yield from op(client)
                return result
            except (SitePartitioned, ServiceUnavailable, Fault) as exc:
                last_error = exc
                if not self.auto_failover:
                    raise
                yield from self.failover(reason=type(exc).__name__)
        raise FederationError("failover attempts exhausted") from last_error

    # -- delegated workflow ops ------------------------------------------
    def select_dataset(
        self,
        dataset_id: str,
        strategy: str = "by-events",
        streams: Optional[int] = None,
    ):
        """Generator op: stage the dataset at the brokered site."""
        staged = yield from self._call(
            lambda c: c.select_dataset(dataset_id, strategy, streams)
        )
        self._dataset = (dataset_id, strategy, streams)
        return staged

    def upload_code(
        self,
        source: str,
        class_name: Optional[str] = None,
        parameters: Optional[dict] = None,
    ):
        """Generator op: stage analysis code at the brokered site."""
        duration = yield from self._call(
            lambda c: c.upload_code(source, class_name, parameters)
        )
        self._code = (source, class_name, parameters)
        return duration

    def run(self):
        """Generator op: start/resume the analysis."""
        count = yield from self._call(lambda c: c.run())
        self._running = True
        return count

    def poll(self):
        """Generator op: one poll of the merged results."""
        return (yield from self._call(lambda c: c.poll()))

    def status(self):
        """Generator op: session status from the current site."""
        return (yield from self._call(lambda c: c.status()))

    def wait_for_completion(
        self,
        poll_interval: float = 5.0,
        timeout: Optional[float] = None,
    ):
        """Generator op: poll until complete, failing over as needed.

        Mirrors :meth:`IPAClient.wait_for_completion` but routes every
        poll/status through the failover wrapper, so a site partition
        mid-wait re-brokers the session instead of raising.
        """
        deadline = None if timeout is None else self.env.now + timeout
        while True:
            result = yield from self.poll()
            progress = result.progress
            expected = (
                progress.expected_engines
                if progress.expected_engines is not None
                else self._require().session.n_engines
            )
            if progress.engines_reporting >= expected and progress.complete:
                return result
            summary = yield from self.status()
            if summary["failures"]:
                failure = summary["failures"][0]
                raise ClientError(
                    f"engine job {failure['job']!r} failed: {failure['error']}"
                )
            if summary.get("unrecoverable"):
                raise ClientError(
                    "session is unrecoverable: every engine died and no "
                    "spare worker is available"
                )
            if deadline is not None and self.env.now >= deadline:
                raise ClientError("timed out waiting for completion")
            yield self.env.timeout(poll_interval)

    # -- shutdown --------------------------------------------------------
    def close(self):
        """Generator op: close the session at the current site.

        A partitioned site cannot be reached, so its session is simply
        abandoned — the site reclaims the engines when lifetimes expire
        or the partition heals.
        """
        client = self._require()
        if self.site is not None and self.site.partitioned:
            self._detach()
            return None
        result = yield from client.close()
        self._detach()
        return result

    def _detach(self) -> None:
        self.site = None
        self._client = None
        self._dataset = None
        self._code = None
        self._running = False
