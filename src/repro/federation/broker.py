"""WAN-aware session brokering across federated sites.

Every candidate site gets a scalar score in *seconds of expected delay*:

``total_s = transfer_s + admission_wait_s + queue_weight_s · queue_depth``

- ``transfer_s`` — 0 when the dataset is whole-resident at the site's
  SE (the warm path skips the fetch entirely); otherwise the cheapest
  WAN source estimate from the replication policy's selector-based
  ranking, or ``inf`` when no source is reachable.
- ``admission_wait_s`` — 0 when the site's per-VO admission controller
  would admit the session now; otherwise its current ``RetryAfter``
  hint (backlog-scaled).
- ``queue_depth`` — open sessions at the site, weighted into seconds by
  ``queue_weight_s``.

Partitioned sites score ``None`` and are excluded.  Ties break by site
name, so brokering is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.federation.errors import FederationError


@dataclass(frozen=True)
class SiteScore:
    """One site's brokering score (lower ``total_s`` wins)."""

    site: str
    resident_mb: float
    wan_mb: float
    transfer_s: float
    admission_wait_s: float
    queue_depth: int
    queue_wait_s: float

    @property
    def total_s(self) -> float:
        return self.transfer_s + self.admission_wait_s + self.queue_wait_s


class SessionBroker:
    """Scores and ranks candidate sites for a client session."""

    def __init__(self, federation, queue_weight_s: float = 1.0) -> None:
        if queue_weight_s < 0:
            raise FederationError("queue_weight_s must be >= 0")
        self.federation = federation
        self.queue_weight_s = queue_weight_s

    def score(
        self,
        site_name: str,
        dataset_id: Optional[str] = None,
        n_engines: Optional[int] = None,
        vo: str = "ilc",
    ) -> Optional[SiteScore]:
        """Score one site, or ``None`` when it is partitioned."""
        fed = self.federation
        site = fed.site(site_name)
        if site.partitioned:
            return None
        resident_mb = wan_mb = transfer_s = 0.0
        if dataset_id is not None:
            placement = fed.catalog.placement(dataset_id)
            location = site.locator.locate(dataset_id)
            if site.replicas is not None and site.replicas.has_whole(location):
                resident_mb = placement.size_mb
            else:
                wan_mb = placement.size_mb
                sources = fed.policy.rank_sources(dataset_id, site_name)
                transfer_s = (
                    sources[0][1].total_s if sources else float("inf")
                )
        engines = n_engines if n_engines is not None else site.config.n_workers
        admission_wait = 0.0
        if site.admission is not None and not site.admission.would_admit(
            vo, engines
        ):
            admission_wait = site.admission.retry_hint()
        depth = site.session_service.active_sessions
        return SiteScore(
            site=site_name,
            resident_mb=resident_mb,
            wan_mb=wan_mb,
            transfer_s=transfer_s,
            admission_wait_s=admission_wait,
            queue_depth=depth,
            queue_wait_s=self.queue_weight_s * depth,
        )

    def rank(
        self,
        dataset_id: Optional[str] = None,
        n_engines: Optional[int] = None,
        vo: str = "ilc",
    ) -> List[SiteScore]:
        """All unpartitioned sites, best (lowest ``total_s``) first."""
        scores = [
            score
            for score in (
                self.score(name, dataset_id, n_engines, vo)
                for name in self.federation.sites
            )
            if score is not None
        ]
        scores.sort(key=lambda s: (s.total_s, s.site))
        return scores
