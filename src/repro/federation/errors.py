"""Federation-layer exceptions."""

from __future__ import annotations

from repro.resilience.faults import ServiceUnavailable


class FederationError(Exception):
    """Raised on invalid federation operations or unbrokerable sessions."""


class SitePartitioned(ServiceUnavailable):
    """The session's site is behind a severed WAN boundary.

    Subclasses :class:`~repro.resilience.faults.ServiceUnavailable` so
    existing back-off/reconnect handling treats it like any service
    outage; the federated client additionally heals it by brokered
    failover to the next-ranked site.
    """
