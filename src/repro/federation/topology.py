"""Multi-site federation: N grid sites on one shared WAN topology.

A :class:`Federation` instantiates N :class:`~repro.core.site.GridSite`
stacks in a single :class:`~repro.sim.Environment` and a single
:class:`~repro.grid.network.Network`, joins their storage elements
pairwise with inter-site WAN links (calibrated
``intersite_wan_mbps``/``intersite_wan_latency_s``), and layers the
cross-site services on top:

- :class:`~repro.federation.catalog.FederatedCatalog` — dataset→site
  placement with per-site generations, wrapping each site's locator and
  replica stack;
- :class:`~repro.federation.broker.SessionBroker` — locality/admission/
  queue-depth scoring of candidate sites for every client session;
- :class:`~repro.federation.policy.ReplicationPolicy` — pin-N-copies
  placement, SE→SE third-party migration, byte-pressure eviction.

The shared ``desktop`` (site ``"home"``) and ``repository`` (site
``"archive"``) hosts model the analyst's machine and the tape archive;
the archive's LAN attaches to the first site only, so remote sites can
reach archived data exclusively over the WAN — which is exactly the
asymmetry the broker's locality term exists to exploit.

Site partitions (``partition_site``/``heal_site``) sever every WAN
boundary link of one site via the site's failure injector and flip the
site's ``partitioned`` flag; the broker then excludes the site and the
federated client fails sessions over to the next-ranked site.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional

from repro.core.config import DEFAULT_CALIBRATION, Calibration
from repro.core.site import GridSite, SiteConfig
from repro.federation.broker import SessionBroker, SiteScore
from repro.federation.catalog import FederatedCatalog
from repro.federation.errors import FederationError
from repro.federation.policy import ReplicationPolicy
from repro.grid.network import Network
from repro.grid.security import CertificateAuthority, Credential
from repro.obs import Observability
from repro.sim import Environment


class Federation:
    """N simulated grid sites brokered as one analysis fabric."""

    def __init__(
        self,
        n_sites: int = 2,
        site_config: Optional[SiteConfig] = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        site_names: Optional[List[str]] = None,
        pin_copies: int = 1,
        max_replica_mb: Optional[float] = None,
        queue_weight_s: float = 1.0,
    ) -> None:
        if site_names is None:
            if n_sites < 1:
                raise FederationError("n_sites must be >= 1")
            site_names = [f"site{i + 1}" for i in range(n_sites)]
        if len(set(site_names)) != len(site_names):
            raise FederationError("site names must be unique")
        config = site_config or SiteConfig()
        if not config.enable_replica_cache:
            raise FederationError(
                "federation requires enable_replica_cache=True "
                "(cross-site placement tracks whole-file residency)"
            )
        self.config = config
        self.calibration = calibration
        self.env = Environment()
        self.obs = Observability(
            self.env, enabled=config.enable_observability
        )
        self.network = Network(self.env)
        self.network.add_host("desktop", site="home")
        self.network.add_host("repository", site="archive")
        self.ca = CertificateAuthority("ipa-federation-ca")
        self.sites: Dict[str, GridSite] = {}
        for index, name in enumerate(site_names):
            self.sites[name] = GridSite(
                config,
                calibration,
                env=self.env,
                network=self.network,
                name=name,
                ca=self.ca,
                obs=self.obs,
                attach_repository=(index == 0),
            )
        for a, b in combinations(site_names, 2):
            se_a = self.sites[a].storage.name
            se_b = self.sites[b].storage.name
            self.network.add_link(
                f"wan-{se_a}-{se_b}",
                se_a,
                se_b,
                bandwidth=calibration.intersite_wan_mbps,
                latency=calibration.intersite_wan_latency_s,
            )
        self.catalog = FederatedCatalog(self)
        self.policy = ReplicationPolicy(
            self, pin_copies=pin_copies, max_replica_mb=max_replica_mb
        )
        self.broker = SessionBroker(self, queue_weight_s=queue_weight_s)

        metrics = self.obs.metrics
        self._sessions_metric = metrics.counter(
            "federation_sessions_total", "Sessions brokered, per site"
        )
        self._fallback_metric = metrics.counter(
            "federation_broker_fallbacks_total",
            "Candidate sites skipped during ranked brokering",
        )
        self._failover_metric = metrics.counter(
            "federation_failovers_total", "Brokered session failovers"
        )
        self._migration_metric = metrics.counter(
            "federation_migrations_total",
            "Whole-dataset SE-to-SE replica migrations",
        )
        self._eviction_metric = metrics.counter(
            "federation_evictions_total",
            "Replica copies evicted by byte pressure",
        )
        self._wan_metric = metrics.counter(
            "federation_wan_mb_total",
            "Migration payload per site and direction (MB)",
        )
        # Plain-dict shadows keep stats() meaningful when observability
        # (and thus the metric registry) is disabled.
        self._brokered: Dict[str, int] = {}
        self._wan: Dict[tuple, float] = {}
        self._fallbacks = 0
        self._failovers = 0
        self._migrations = 0
        self._evictions = 0

    # -- plumbing --------------------------------------------------------
    @property
    def site_names(self) -> List[str]:
        return list(self.sites)

    def site(self, name: str) -> GridSite:
        try:
            return self.sites[name]
        except KeyError:
            raise FederationError(f"unknown site {name!r}") from None

    def run(self, until: Optional[float] = None) -> None:
        """Advance the shared simulation clock."""
        self.env.run(until=until)

    # -- users -----------------------------------------------------------
    def enroll_user(
        self, subject: str, role: str = "member", vo: Optional[str] = None
    ) -> Credential:
        """Add a VO member at *every* site; issue one shared credential.

        All sites trust the federation CA, so a single credential
        authenticates at whichever site the broker picks.
        """
        for site in self.sites.values():
            target = site.vo if vo is None else site.add_vo(vo)
            target.add_member(subject, role)
        return self.ca.issue_identity(subject, now=self.env.now)

    # -- datasets ---------------------------------------------------------
    def register_dataset(
        self,
        dataset_id: str,
        path: str,
        size_mb: float,
        n_events: int,
        metadata: Optional[dict] = None,
        content: Optional[dict] = None,
        home: Optional[str] = None,
        kind: str = "gridftp",
    ):
        """Register a dataset federation-wide (see FederatedCatalog)."""
        return self.catalog.register(
            dataset_id,
            path,
            size_mb,
            n_events,
            metadata=metadata,
            content=content,
            home=home,
            kind=kind,
        )

    # -- site partitions ---------------------------------------------------
    def partition_site(self, name: str) -> List[str]:
        """Sever every WAN boundary link of *name*; idempotent.

        In-flight flows crossing the boundary die with ``LinkDown``;
        intra-site traffic keeps flowing — the site is marooned, not
        dead, which is why abandoned sessions there survive to be
        reclaimed on heal.
        """
        site = self.site(name)
        if site.partitioned:
            return []
        links = site.injector.partition_site(name)
        site.partitioned = True
        self.obs.events.emit(
            "site_partitioned",
            message=f"{name} cut off ({len(links)} boundary links down)",
            severity="warning",
            site=name,
            links=len(links),
        )
        return links

    def heal_site(self, name: str) -> List[str]:
        """Restore the WAN boundary of *name*; idempotent."""
        site = self.site(name)
        if not site.partitioned:
            return []
        links = site.injector.heal_site(name)
        site.partitioned = False
        self.obs.events.emit(
            "site_healed",
            message=f"{name} rejoined ({len(links)} boundary links up)",
            severity="info",
            site=name,
            links=len(links),
        )
        return links

    # -- bookkeeping hooks (called by broker/policy/client) ----------------
    def note_brokered(self, score: SiteScore, client_id: str) -> None:
        self._brokered[score.site] = self._brokered.get(score.site, 0) + 1
        self._sessions_metric.inc(site=score.site)
        self.obs.events.emit(
            "federation_session_brokered",
            message=(
                f"{client_id} -> {score.site} "
                f"(score {score.total_s:.1f}s, resident "
                f"{score.resident_mb:.0f} MB, wan {score.wan_mb:.0f} MB)"
            ),
            severity="info",
            site=score.site,
            client=client_id,
            score_s=round(score.total_s, 3),
            resident_mb=score.resident_mb,
            wan_mb=score.wan_mb,
        )

    def note_fallback(self, site: str, reason: str) -> None:
        self._fallbacks += 1
        self._fallback_metric.inc(site=site, reason=reason)

    def note_failover(
        self, from_site: str, to_site: str, client_id: str, reason: str
    ) -> None:
        self._failovers += 1
        self._failover_metric.inc()
        self.obs.events.emit(
            "federation_failover",
            message=f"{client_id}: {from_site} -> {to_site} ({reason})",
            severity="warning",
            client=client_id,
            from_site=from_site,
            to_site=to_site,
            reason=reason,
        )

    def note_migration(
        self,
        dataset_id: str,
        src: str,
        dst: str,
        size_mb: float,
        seconds: float,
    ) -> None:
        self._migrations += 1
        self._migration_metric.inc()
        self._wan[(src, "out")] = self._wan.get((src, "out"), 0.0) + size_mb
        self._wan[(dst, "in")] = self._wan.get((dst, "in"), 0.0) + size_mb
        self._wan_metric.inc(size_mb, site=src, direction="out")
        self._wan_metric.inc(size_mb, site=dst, direction="in")
        self.obs.events.emit(
            "federation_replica_migrated",
            message=(
                f"{dataset_id}: {src} -> {dst} "
                f"({size_mb:.0f} MB in {seconds:.0f}s)"
            ),
            severity="info",
            dataset=dataset_id,
            src=src,
            dst=dst,
            mb=size_mb,
            seconds=round(seconds, 3),
        )

    def note_eviction(self, dataset_id: str, site: str, size_mb: float) -> None:
        self._evictions += 1
        self._eviction_metric.inc()
        self.obs.events.emit(
            "federation_replica_evicted",
            message=f"{dataset_id} copy at {site} dropped ({size_mb:.0f} MB)",
            severity="info",
            dataset=dataset_id,
            site=site,
            mb=size_mb,
            reason="byte-pressure",
        )

    # -- stats -------------------------------------------------------------
    def stats(self) -> dict:
        """Per-site panel rows plus federation-wide counters."""
        rows = []
        for name, site in self.sites.items():
            resident = (
                round(site.replicas.resident_mb(), 3)
                if site.replicas is not None
                else 0.0
            )
            backlog = (
                site.admission.waiting() if site.admission is not None else 0
            )
            rows.append(
                {
                    "site": name,
                    "sessions": self._brokered.get(name, 0),
                    "active_sessions": site.session_service.active_sessions,
                    "resident_replica_mb": resident,
                    "wan_in_mb": round(self._wan.get((name, "in"), 0.0), 3),
                    "wan_out_mb": round(self._wan.get((name, "out"), 0.0), 3),
                    "admission_backlog": backlog,
                    "partitioned": site.partitioned,
                }
            )
        return {
            "sites": rows,
            "brokered": sum(self._brokered.values()),
            "fallbacks": self._fallbacks,
            "failovers": self._failovers,
            "migrations": self._migrations,
            "evictions": self._evictions,
        }
