"""Cross-site replication policy: pinning, migration, byte pressure.

Generalizes the single-site :class:`~repro.replica.selector.ReplicaSelector`
cost model across sites: candidate *source SEs* for a whole-dataset
migration are ranked by ``route latency + size / bottleneck bandwidth +
source spindle backlog`` over the shared WAN topology, exactly the
formula the selector applies to per-part sources inside one site.  The
winning source feeds an SE→SE third-party transfer
(:meth:`~repro.grid.transfer.GridFTPService.third_party`); failed or
partitioned sources fall through to the next-ranked candidate.

Byte pressure works on *migrated* copies only: home copies are resident
by construction and never evicted, and a dataset never drops below its
pinned copy count.  Eviction order is FIFO over migrations (oldest copy
goes first) — cheap, deterministic, and good enough for a simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.federation.errors import FederationError
from repro.grid.network import LinkDown
from repro.grid.transfer import TransferError
from repro.replica.selector import ReplicaSelector, SourceEstimate


class ReplicationPolicy:
    """Pin-N-copies placement with WAN-ranked sources and byte pressure.

    Parameters
    ----------
    federation:
        The owning :class:`~repro.federation.topology.Federation`.
    pin_copies:
        Default minimum whole-copy count per dataset (≥ 1).
    max_replica_mb:
        Global ceiling on whole-copy bytes across all sites; ``None``
        disables pressure-driven eviction.
    """

    def __init__(
        self,
        federation,
        pin_copies: int = 1,
        max_replica_mb: Optional[float] = None,
    ) -> None:
        if pin_copies < 1:
            raise FederationError("pin_copies must be >= 1")
        if max_replica_mb is not None and max_replica_mb <= 0:
            raise FederationError("max_replica_mb must be > 0")
        self.federation = federation
        self.default_pin = pin_copies
        self.max_replica_mb = max_replica_mb
        self._pins: Dict[str, int] = {}
        #: FIFO of (dataset_id, site) migrations — eviction order.
        self._migration_order: List[Tuple[str, str]] = []

    # -- pinning ---------------------------------------------------------
    def pin(self, dataset_id: str, copies: int) -> None:
        """Require at least *copies* whole copies of *dataset_id*."""
        if copies < 1:
            raise FederationError("pinned copy count must be >= 1")
        self.federation.catalog.placement(dataset_id)
        self._pins[dataset_id] = copies

    def pin_count(self, dataset_id: str) -> int:
        """Effective pinned copy count for *dataset_id*."""
        return self._pins.get(dataset_id, self.default_pin)

    # -- source ranking --------------------------------------------------
    def rank_sources(
        self, dataset_id: str, target: str
    ) -> List[Tuple[str, SourceEstimate]]:
        """Reachable source sites holding a whole copy, cheapest first.

        Each candidate SE is costed with its *own* selector so the
        spindle-backlog term charges the source's disk, mirroring the
        intra-site per-part model.  Partitioned sites and sites whose SE
        is unroutable are dropped; ties break by site name.
        """
        fed = self.federation
        target_site = fed.site(target)
        placement = fed.catalog.placement(dataset_id)
        dst_se = target_site.storage.name
        ranked: List[Tuple[float, str, SourceEstimate]] = []
        for name in fed.catalog.sites_with_copy(dataset_id):
            if name == target:
                continue
            src_site = fed.site(name)
            if src_site.partitioned:
                continue
            selector = ReplicaSelector(
                fed.network,
                src_site.storage.name,
                fed.calibration.se_disk_mbps,
            )
            est = selector.estimate(
                src_site.storage.name, dst_se, placement.size_mb
            )
            if est is None:
                continue
            ranked.append((est.total_s, name, est))
        ranked.sort(key=lambda item: (item[0], item[1]))
        return [(name, est) for _cost, name, est in ranked]

    # -- migration -------------------------------------------------------
    def ensure_resident(self, dataset_id: str, target: str):
        """Generator op: make *dataset_id* whole-resident at *target*.

        No-op (returns ``False``) when the copy is already there.
        Otherwise pulls it via SE→SE third-party transfer from the
        cheapest reachable source, falling through the ranking on
        transfer failure.  Returns ``True`` after a migration; raises
        :class:`FederationError` when no source can deliver.
        """
        fed = self.federation
        site = fed.site(target)
        if site.partitioned:
            raise FederationError(f"target site {target!r} is partitioned")
        if site.replicas is None:
            raise FederationError(
                f"site {target!r} has no replica manager (enable_replica_cache)"
            )
        location = site.locator.locate(dataset_id)
        if site.replicas.has_whole(location):
            return False
        sources = self.rank_sources(dataset_id, target)
        if not sources:
            raise FederationError(
                f"no reachable whole copy of {dataset_id!r} for {target!r}"
            )
        last_error: Optional[BaseException] = None
        for source_name, _est in sources:
            src_site = fed.site(source_name)
            started = fed.env.now
            try:
                yield site.ftp.third_party(
                    src_site.storage,
                    site.storage,
                    f"{dataset_id}.whole",
                    location.size_mb,
                )
            except (TransferError, LinkDown) as exc:
                last_error = exc
                continue
            site.replicas.record_whole(location)
            self._migration_order.append((dataset_id, target))
            fed.note_migration(
                dataset_id,
                source_name,
                target,
                location.size_mb,
                fed.env.now - started,
            )
            self._enforce_pressure()
            return True
        raise FederationError(
            f"every ranked source for {dataset_id!r} failed"
        ) from last_error

    def ensure_pinned(self, dataset_id: str, copies: Optional[int] = None):
        """Generator op: migrate until the pinned copy count is met.

        Each round targets the cheapest unpartitioned site without a
        copy (by best-source cost).  Returns the list of sites that
        received a new copy.
        """
        if copies is not None:
            self.pin(dataset_id, copies)
        want = self.pin_count(dataset_id)
        fed = self.federation
        placed: List[str] = []
        while True:
            have = fed.catalog.sites_with_copy(dataset_id)
            if len(have) >= want:
                return placed
            candidates: List[Tuple[float, str]] = []
            for name, site in fed.sites.items():
                if name in have or site.partitioned:
                    continue
                sources = self.rank_sources(dataset_id, name)
                if sources:
                    candidates.append((sources[0][1].total_s, name))
            if not candidates:
                raise FederationError(
                    f"cannot reach pin={want} for {dataset_id!r}: "
                    f"{len(have)} copies, no eligible target"
                )
            _cost, target = min(candidates)
            yield from self.ensure_resident(dataset_id, target)
            placed.append(target)

    # -- byte pressure ---------------------------------------------------
    def resident_whole_mb(self) -> float:
        """Total whole-copy bytes across the federation (all sites)."""
        fed = self.federation
        total = 0.0
        for placement in fed.catalog.placements():
            total += placement.size_mb * fed.catalog.copy_count(
                placement.dataset_id
            )
        return total

    def _enforce_pressure(self) -> List[Tuple[str, str]]:
        """Evict FIFO-oldest migrated copies until under the ceiling."""
        if self.max_replica_mb is None:
            return []
        fed = self.federation
        evicted: List[Tuple[str, str]] = []
        while self.resident_whole_mb() > self.max_replica_mb:
            victim = self._pick_victim()
            if victim is None:
                break
            dataset_id, site_name = victim
            self._migration_order.remove(victim)
            site = fed.site(site_name)
            size = fed.catalog.placement(dataset_id).size_mb
            if site.replicas.forget_whole(dataset_id, reason="byte-pressure"):
                fed.note_eviction(dataset_id, site_name, size)
                evicted.append(victim)
        return evicted

    def _pick_victim(self) -> Optional[Tuple[str, str]]:
        """Oldest migrated copy whose dataset stays at/above its pin."""
        for dataset_id, site_name in self._migration_order:
            if (
                self.federation.catalog.copy_count(dataset_id)
                > self.pin_count(dataset_id)
            ):
                return (dataset_id, site_name)
        return None
