"""Federated catalog: dataset→site placement over per-site replica state.

Wraps — never replaces — each site's locator/catalog/ReplicaCatalog
stack: a dataset registered through the federation gets a location record
at *every* site (the home site resident by construction, remote sites
pointing their ``origin_host`` at the home SE), and per-site replica
residency remains the property of each site's own
:class:`~repro.replica.manager.ReplicaManager`.  What the federation adds
is the cross-site view: which sites hold a whole copy right now, which
site is home, and per-site placement generations driven by the locator
update hooks' originating-site id (so an update at one site never
invalidates another site's copies — the over-invalidation footgun the
site-id hook fix exists to prevent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.federation.errors import FederationError
from repro.services.locator import LocatorError


@dataclass(frozen=True)
class Placement:
    """Federation-level placement record for one dataset."""

    dataset_id: str
    home: str
    size_mb: float
    n_events: int
    kind: str = "gridftp"


class FederatedCatalog:
    """Cross-site dataset placement with per-site generations."""

    def __init__(self, federation) -> None:
        self.federation = federation
        self._placements: Dict[str, Placement] = {}
        #: (dataset_id, site_id) -> locator-update count at that site.
        self._site_generations: Dict[Tuple[str, Optional[str]], int] = {}
        #: Chronological (dataset_id, site_id) invalidations (diagnostics).
        self.invalidations: List[Tuple[str, Optional[str]]] = []
        for site in federation.sites.values():
            site.locator.add_update_hook(self._on_locator_update)

    # -- locator hooks ---------------------------------------------------
    def _on_locator_update(
        self, dataset_id: str, site_id: Optional[str]
    ) -> None:
        """One site re-registered a dataset.

        The originating site's own replica manager has already bumped its
        local generation through its own locator hook; here only that
        site's federation-level generation moves — every other site's
        replicas stay valid.
        """
        key = (dataset_id, site_id)
        self._site_generations[key] = self._site_generations.get(key, 0) + 1
        self.invalidations.append((dataset_id, site_id))

    def generation(self, dataset_id: str, site: str) -> int:
        """Locator-update count of *dataset_id* at *site* (0 = pristine)."""
        return self._site_generations.get((dataset_id, site), 0)

    # -- registration ------------------------------------------------------
    def register(
        self,
        dataset_id: str,
        path: str,
        size_mb: float,
        n_events: int,
        metadata: Optional[dict] = None,
        content: Optional[dict] = None,
        home: Optional[str] = None,
        kind: str = "gridftp",
    ) -> Placement:
        """Register a dataset federation-wide, homed at one site.

        The home site's copy is SE-resident by construction; every other
        site gets a location whose ``origin_host`` is the home SE, so a
        cold stage there naturally pulls the file over the inter-site WAN
        link (and the replication policy can pre-migrate it via
        third-party transfer instead).
        """
        sites = self.federation.sites
        if home is None:
            home = next(iter(sites))
        if home not in sites:
            raise FederationError(f"unknown home site {home!r}")
        if dataset_id in self._placements:
            raise FederationError(
                f"dataset {dataset_id!r} already placed (home "
                f"{self._placements[dataset_id].home!r})"
            )
        home_se = sites[home].storage.name
        for name, site in sites.items():
            origin = None if name == home else home_se
            site.register_dataset(
                dataset_id,
                path,
                size_mb=size_mb,
                n_events=n_events,
                metadata=metadata,
                content=content,
                origin_host=origin,
                kind=kind,
            )
        placement = Placement(dataset_id, home, float(size_mb), n_events, kind)
        self._placements[dataset_id] = placement
        return placement

    def republish(self, dataset_id: str, site: str) -> None:
        """Re-register a dataset's location at *one* site.

        Fires that site's locator update hooks (carrying the site id), so
        only that site's replicas are invalidated — the other sites' whole
        copies keep serving.
        """
        target = self.federation.site(site)
        location = target.locator.locate(dataset_id)
        target.locator.replace_location(location)

    # -- placement queries -------------------------------------------------
    def placement(self, dataset_id: str) -> Placement:
        """The federation placement of *dataset_id* (raises when unknown)."""
        try:
            return self._placements[dataset_id]
        except KeyError:
            raise FederationError(
                f"dataset {dataset_id!r} is not federated"
            ) from None

    def placements(self) -> List[Placement]:
        """Every federated placement, registration order."""
        return list(self._placements.values())

    def home(self, dataset_id: str) -> str:
        """Home site of *dataset_id*."""
        return self.placement(dataset_id).home

    def sites_with_copy(self, dataset_id: str) -> List[str]:
        """Sites currently holding a whole copy, in site order.

        Includes the home site (resident by construction) and every site
        whose replica manager recorded a migrated/fetched whole file.
        """
        out: List[str] = []
        for name, site in self.federation.sites.items():
            if site.replicas is None:
                continue
            try:
                location = site.locator.locate(dataset_id)
            except LocatorError:
                continue
            if site.replicas.has_whole(location):
                out.append(name)
        return out

    def copy_count(self, dataset_id: str) -> int:
        """Whole copies currently resident across the federation."""
        return len(self.sites_with_copy(dataset_id))

    def __len__(self) -> int:
        return len(self._placements)
