"""Multi-site federation: WAN-aware brokering, replica placement, failover.

The paper frames IPA as a single-site service a desktop client dials
into; real grid deployments (OSG/LCG) run many such sites against shared
datasets.  This package stands up N simulated sites on one WAN topology
and brokers every client session across them:

:class:`Federation` (:mod:`repro.federation.topology`)
    N :class:`~repro.core.site.GridSite` stacks in one simulation, SEs
    joined by calibrated inter-site WAN links, plus site-partition
    faults and per-site panel stats.
:class:`FederatedCatalog` (:mod:`repro.federation.catalog`)
    Dataset→site placement with per-site generations, wrapping each
    site's locator/replica stack.
:class:`SessionBroker` (:mod:`repro.federation.broker`)
    Data-locality / admission-headroom / queue-depth scoring of
    candidate sites.
:class:`ReplicationPolicy` (:mod:`repro.federation.policy`)
    Pin-N-copies placement, SE→SE third-party migration with
    WAN-cost-ranked sources, byte-pressure eviction.
:class:`FederatedClient` (:mod:`repro.federation.client`)
    Broker-routed :class:`~repro.client.client.IPAClient` with ranked
    fallback on refusal and transparent failover on site partition.
"""

from repro.federation.broker import SessionBroker, SiteScore
from repro.federation.catalog import FederatedCatalog, Placement
from repro.federation.client import FederatedClient
from repro.federation.errors import FederationError, SitePartitioned
from repro.federation.policy import ReplicationPolicy
from repro.federation.topology import Federation

__all__ = [
    "FederatedCatalog",
    "FederatedClient",
    "Federation",
    "FederationError",
    "Placement",
    "ReplicationPolicy",
    "SessionBroker",
    "SitePartitioned",
    "SiteScore",
]
