"""Managing Class Loader: stage analysis code to engines, with hot reload.

"Once the analysis engines are ready ... we need a way to ship the
analysis code that does this analysis from the client machine to the Grid
machines" (§2.4); and "after every iteration of the analysis, changes can
be made in the analysis code and the new analysis code can be dynamically
reloaded" (§3.6).

Staging cost = fixed service overhead + the broadcast of the (tiny) source
bundle over the LAN; for the paper's 15 kB of bytecode this lands at ~7 s
(Table 1), dominated by the overhead, which is exactly why dynamic reload
beats re-staging data (benchmarked in ``bench_reload.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine.sandbox import CodeBundle
from repro.grid.nodes import ManagerNode, Node
from repro.grid.transfer import GridFTPService
from repro.obs import NULL_OBS, Observability
from repro.sim import Environment, Process


class CodeLoaderError(Exception):
    """Raised for unknown sessions or staging without code."""


@dataclass
class StagedCode:
    """Bookkeeping for one session's current code."""

    bundle: CodeBundle
    staged_to: List[str]
    staged_at: float


class ManagingClassLoaderService:
    """Holds the latest code bundle per session and ships it to workers.

    Parameters
    ----------
    env, manager, ftp:
        Simulation environment, the manager node (broadcast source), and
        the transfer service.
    stage_overhead:
        Fixed per-staging service cost in seconds (class-loader set-up,
        request handling); calibrated so a 15 kB bundle takes ~7 s.
    """

    def __init__(
        self,
        env: Environment,
        manager: ManagerNode,
        ftp: GridFTPService,
        stage_overhead: float = 6.5,
        obs: Optional[Observability] = None,
    ) -> None:
        if stage_overhead < 0:
            raise ValueError("stage_overhead must be >= 0")
        self.env = env
        self.obs = obs or NULL_OBS
        self.manager = manager
        self.ftp = ftp
        self.stage_overhead = stage_overhead
        self._staged: Dict[str, StagedCode] = {}

    def current(self, session_id: str) -> CodeBundle:
        """The latest bundle staged for a session."""
        staged = self._staged.get(session_id)
        if staged is None:
            raise CodeLoaderError(f"no code staged for session {session_id!r}")
        return staged.bundle

    def current_version(self, session_id: str) -> int:
        """Version number of the staged bundle (0 when none)."""
        staged = self._staged.get(session_id)
        return staged.bundle.version if staged else 0

    def stage(
        self,
        session_id: str,
        bundle: CodeBundle,
        workers: Sequence[Node],
    ) -> Process:
        """Ship *bundle* to every worker; value is the staging time (s).

        Re-staging with a new bundle is the dynamic-reload path: the new
        version replaces the old one and engines observe the version bump.
        """
        def run():
            started = self.env.now
            if self.stage_overhead:
                yield self.env.timeout(self.stage_overhead)
            if workers:
                yield self.ftp.broadcast(
                    self.manager,
                    list(workers),
                    f"{session_id}-code-v{bundle.version}",
                    bundle.size_kb / 1000.0,  # kB -> MB
                )
            self._staged[session_id] = StagedCode(
                bundle=bundle,
                staged_to=[node.name for node in workers],
                staged_at=self.env.now,
            )
            return self.env.now - started

        return self.env.process(
            self.obs.tracer.trace_gen(
                "code.stage",
                run(),
                session=session_id,
                version=bundle.version,
                fanout=len(workers),
            )
        )

    def reload(
        self,
        session_id: str,
        workers: Sequence[Node],
        source: Optional[str] = None,
        parameters: Optional[dict] = None,
    ) -> Process:
        """Stage an updated bundle (bumped version) for the session."""
        current = self.current(session_id)
        updated = current.updated(source=source, parameters=parameters)
        return self.stage(session_id, updated, workers)

    def drop_session(self, session_id: str) -> None:
        """Forget a session's staged code (session close)."""
        self._staged.pop(session_id, None)
