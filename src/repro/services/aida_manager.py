"""AIDA Manager Service: collect, merge, and serve intermediate results.

"As soon as the analysis begins, the intermediate results from each
individual analysis engines are collected and merged at the Manager node by
a special manager service called the AIDA manager service.  A separate
plug-in on the JAS client constantly polls the AIDA manager" (§3.7).

Scalability (§2.5): with many engines the flat merge at one node becomes a
bottleneck; the service therefore supports a configurable **fan-in**: with
fan-in *f*, snapshots are merged through a tree of sub-mergers of degree
*f* whose levels work in parallel, so merge latency grows like
``f * ceil(log_f k)`` instead of ``k``.  ``bench_merge_tree.py`` ablates
this.

Correctness rules:

* the latest snapshot per engine wins (snapshots are cumulative);
* snapshots from an older ``run_id`` (pre-rewind) are discarded;
* merging is the exact AIDA merge, so the served tree equals a
  single-engine run over the concatenated data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aida.tree import ObjectTree
from repro.engine.engine import Snapshot
from repro.obs import NULL_OBS, Observability
from repro.sim import Environment, Process


class MergeError(Exception):
    """Raised on invalid manager operations."""


@dataclass
class MergeProgress:
    """Progress summary returned alongside the merged tree."""

    session_id: str
    engines_reporting: int
    events_processed: int
    total_events: int
    final_engines: int
    run_id: int
    analysis_versions: List[int]
    merged_at: float
    #: Engines the session currently expects results from (set by the
    #: session service; maintained through recovery).  ``None`` when the
    #: session layer is not tracking membership.
    expected_engines: Optional[int] = None
    #: True while a failure recovery is re-dispatching orphaned partitions
    #: — results must not be treated as complete during that window.
    recovering: bool = False

    @property
    def fraction_done(self) -> float:
        """Fraction of events processed (0 when unknown)."""
        if self.total_events <= 0:
            return 0.0
        return self.events_processed / self.total_events

    @property
    def complete(self) -> bool:
        """True when every expected engine delivered its final snapshot."""
        if self.recovering:
            return False
        if self.engines_reporting <= 0:
            return False
        if (
            self.expected_engines is not None
            and self.engines_reporting < self.expected_engines
        ):
            return False
        return self.final_engines == self.engines_reporting


class AIDAManagerService:
    """Stores per-engine snapshots and serves merged results.

    Parameters
    ----------
    env:
        Simulation environment (merge latency is charged on its clock).
    merge_cost_per_tree:
        Seconds to merge one snapshot tree into an accumulator.
    fan_in:
        Sub-merger tree degree; ``None`` = flat single-node merge (§2.5's
        bottleneck case).
    """

    def __init__(
        self,
        env: Environment,
        merge_cost_per_tree: float = 0.05,
        fan_in: Optional[int] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if merge_cost_per_tree < 0:
            raise ValueError("merge_cost_per_tree must be >= 0")
        if fan_in is not None and fan_in < 2:
            raise ValueError("fan_in must be >= 2")
        self.env = env
        self.obs = obs or NULL_OBS
        self._snapshot_metric = self.obs.metrics.counter(
            "aida_snapshots_total",
            "Engine snapshots accepted by the AIDA manager",
        )
        self._merge_metric = self.obs.metrics.histogram(
            "aida_merge_seconds", "AIDA merge latency (simulated seconds)"
        )
        self.merge_cost_per_tree = merge_cost_per_tree
        self.fan_in = fan_in
        self._snapshots: Dict[str, Dict[str, Snapshot]] = {}
        self._run_ids: Dict[str, int] = {}
        #: Engines banned per session: contributions from a dead engine's
        #: epoch are discarded and any late (zombie) submissions dropped,
        #: so re-processed partitions are never double-counted.
        self._banned: Dict[str, set] = {}
        #: Expected engine count per session (None = untracked).
        self._expected: Dict[str, int] = {}
        #: Sessions currently mid-recovery.
        self._recovering: Dict[str, bool] = {}
        #: (session_id, n_trees, latency) per merge, for the benchmarks.
        self.merge_log: List[tuple] = []

    # -- ingestion ----------------------------------------------------------
    def submit_snapshot(self, session_id: str, snapshot: Snapshot) -> None:
        """Accept an engine snapshot (latest-per-engine, current run only)."""
        if snapshot.engine_id in self._banned.get(session_id, ()):
            return  # late submission from a dead engine's epoch
        current_run = self._run_ids.get(session_id, 0)
        if snapshot.run_id > current_run:
            # A rewind happened: everything older is now invalid.
            self._run_ids[session_id] = snapshot.run_id
            self._snapshots[session_id] = {}
            current_run = snapshot.run_id
        elif snapshot.run_id < current_run:
            return  # stale snapshot from before the rewind
        session = self._snapshots.setdefault(session_id, {})
        existing = session.get(snapshot.engine_id)
        if existing is not None and existing.sequence >= snapshot.sequence:
            return  # out-of-order delivery
        session[snapshot.engine_id] = snapshot
        self._snapshot_metric.inc()

    def begin_run(self, session_id: str, run_id: int) -> None:
        """Invalidate snapshots older than *run_id* (a rewind happened).

        Called by the session service the moment it fans a rewind out, so
        a client polling right after the rewind never sees the *previous*
        run's (complete) results as if they were the new run's.
        """
        current = self._run_ids.get(session_id, 0)
        if run_id > current:
            self._run_ids[session_id] = run_id
            self._snapshots[session_id] = {}

    # -- failure recovery ---------------------------------------------------
    def discard_engine(self, session_id: str, engine_id: str) -> None:
        """Drop a dead engine's stored snapshots and ban future ones.

        The ban is what keeps merged histograms exactly correct under
        recovery: a hung or zombie engine may still submit snapshots for a
        partition that has been re-dispatched elsewhere, and those must
        never reach the merge.
        """
        self._snapshots.get(session_id, {}).pop(engine_id, None)
        self._banned.setdefault(session_id, set()).add(engine_id)

    def banned_engines(self, session_id: str) -> set:
        """Engines whose contributions are discarded for this session."""
        return set(self._banned.get(session_id, ()))

    def set_expected_engines(self, session_id: str, count: int) -> None:
        """Declare how many engines the session expects results from."""
        if count < 0:
            raise MergeError("expected engine count must be >= 0")
        self._expected[session_id] = count

    def set_recovering(self, session_id: str, flag: bool) -> None:
        """Mark the session as (not) mid-recovery; gates ``complete``."""
        self._recovering[session_id] = bool(flag)

    def drop_session(self, session_id: str) -> None:
        """Forget a session's snapshots (session close); idempotent."""
        self._snapshots.pop(session_id, None)
        self._run_ids.pop(session_id, None)
        self._banned.pop(session_id, None)
        self._expected.pop(session_id, None)
        self._recovering.pop(session_id, None)

    # -- merge model ----------------------------------------------------------
    def merge_latency(self, n_trees: int) -> float:
        """Simulated seconds to merge *n_trees* snapshot trees.

        Flat: ``cost * n``.  Tree of fan-in *f*: levels run in parallel, so
        latency is ``cost * f * ceil(log_f n)`` (each level merges groups
        of *f* concurrently).
        """
        if n_trees <= 1:
            return self.merge_cost_per_tree * n_trees
        if self.fan_in is None:
            return self.merge_cost_per_tree * n_trees
        levels = math.ceil(math.log(n_trees, self.fan_in))
        return self.merge_cost_per_tree * self.fan_in * max(1, levels)

    # -- serving ------------------------------------------------------------
    def merged(self, session_id: str) -> Process:
        """Merge the latest snapshots; value is ``(tree_dict, progress)``.

        Charges the merge latency on the simulated clock, then performs the
        exact merge.
        """
        span = self.obs.tracer.child("aida.merge", session=session_id)

        def run():
            session = dict(self._snapshots.get(session_id, {}))
            span.set(n_trees=len(session))
            latency = self.merge_latency(len(session))
            if latency:
                yield self.env.timeout(latency)
            self._merge_metric.observe(latency)
            merged_tree = ObjectTree()
            for snapshot in sorted(session.values(), key=lambda s: s.engine_id):
                merged_tree.merge_from(ObjectTree.from_dict(snapshot.tree))
            progress = MergeProgress(
                session_id=session_id,
                engines_reporting=len(session),
                events_processed=sum(
                    s.events_processed for s in session.values()
                ),
                total_events=sum(s.total_events for s in session.values()),
                final_engines=sum(1 for s in session.values() if s.final),
                run_id=self._run_ids.get(session_id, 0),
                analysis_versions=sorted(
                    {s.analysis_version for s in session.values()}
                ),
                merged_at=self.env.now,
                expected_engines=self._expected.get(session_id),
                recovering=self._recovering.get(session_id, False),
            )
            self.merge_log.append((session_id, len(session), latency))
            return merged_tree.to_dict(), progress

        return self.env.process(self.obs.tracer.wrap(span, run()))

    def snapshot_count(self, session_id: str) -> int:
        """Engines with at least one stored snapshot."""
        return len(self._snapshots.get(session_id, {}))
