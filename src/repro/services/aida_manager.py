"""AIDA Manager Service: collect, merge, and serve intermediate results.

"As soon as the analysis begins, the intermediate results from each
individual analysis engines are collected and merged at the Manager node by
a special manager service called the AIDA manager service.  A separate
plug-in on the JAS client constantly polls the AIDA manager" (§3.7).

Scalability (§2.5): with many engines the flat merge at one node becomes a
bottleneck; the paper prescribes "a sub-level of components that performs
the merging".  With ``fan_in=f`` the manager builds that sub-level for
real (see :mod:`repro.services.combiner`): engines are routed to leaf
**combiner** nodes of degree *f* which maintain their own incremental
partial trees and republish combined deltas upward, level by level, to
the root.  A poll re-folds only the dirty combiner subtrees; within one
level the combiners fold concurrently on the simulated clock, so
per-poll merge cost scales like ``f * ceil(log_f dirty)`` instead of
``dirty``.  ``bench_merge_tree.py`` measures this at 4-1024 engines and
checks the served tree stays exactly equal to the flat merge.

On top of the fan-in model, the manager merges **incrementally** (the
default): it keeps a deserialized tree per engine keyed by the engine's
snapshot sequence, accepts *delta* snapshots that carry only changed
objects on top of an acknowledged base sequence, and maintains a partial
merged tree in which only the paths touched since the last poll are
re-folded.  A poll therefore costs O(dirty engines), not
O(engines x tree size) — the ``merge_latency_incremental`` cost model
charges the simulated clock accordingly.  ``begin_run`` (rewind),
``discard_engine`` (failure recovery), and ``drop_session`` invalidate the
caches so the served tree stays bit-identical to a from-scratch flat merge
of the surviving latest snapshots (property-tested).

Correctness rules:

* the latest snapshot per engine wins (snapshots are cumulative);
* snapshots from an older ``run_id`` (pre-rewind) are discarded;
* a delta whose ``base_sequence`` does not match the cached sequence is
  rejected with ``"resync"`` so the engine re-publishes a full keyframe;
* merging is the exact AIDA merge, so the served tree equals a
  single-engine run over the concatenated data.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.aida.serial import from_dict as object_from_dict
from repro.aida.tree import ObjectTree
from repro.engine.engine import Snapshot
from repro.obs import NULL_OBS, Observability
from repro.resilience.faults import ServiceUnavailable
from repro.services.combiner import MergeTree, plan_groups
from repro.sim import Environment, Process


class MergeError(Exception):
    """Raised on invalid manager operations."""


@dataclass
class MergeProgress:
    """Progress summary returned alongside the merged tree."""

    session_id: str
    engines_reporting: int
    events_processed: int
    total_events: int
    final_engines: int
    run_id: int
    analysis_versions: List[int]
    merged_at: float
    #: Engines the session currently expects results from (set by the
    #: session service; maintained through recovery).  ``None`` when the
    #: session layer is not tracking membership.
    expected_engines: Optional[int] = None
    #: True while a failure recovery is re-dispatching orphaned partitions
    #: — results must not be treated as complete during that window.
    recovering: bool = False
    #: Monotonic merge generation: bumps whenever a merge folded dirty
    #: data.  Clients compare it against their per-client cursor to tell
    #: a fresh tree from a redundant re-poll (coalescing keeps replies
    #: bit-identical; the generation is how cursors stay aligned).
    merge_generation: int = 0

    @property
    def fraction_done(self) -> float:
        """Fraction of events processed (0 when unknown)."""
        if self.total_events <= 0:
            return 0.0
        return self.events_processed / self.total_events

    @property
    def complete(self) -> bool:
        """True when every expected engine delivered its final snapshot."""
        if self.recovering:
            return False
        if self.engines_reporting <= 0:
            return False
        if (
            self.expected_engines is not None
            and self.engines_reporting < self.expected_engines
        ):
            return False
        return self.final_engines == self.engines_reporting


class AIDAManagerService:
    """Stores per-engine snapshots and serves merged results.

    Parameters
    ----------
    env:
        Simulation environment (merge latency is charged on its clock).
    merge_cost_per_tree:
        Seconds to merge one snapshot tree into an accumulator.
    fan_in:
        Combiner tree degree; ``None`` = flat single-node merge (§2.5's
        bottleneck case).  With a fan-in and incremental merging on, the
        session layer wires a real combiner tier via
        :meth:`configure_tier` and polls re-fold dirty subtrees only.
    grouping:
        Leaf-combiner grouping policy: ``"chunk"`` (contiguous runs of
        the sorted engine ids — preserves the flat fold order exactly)
        or ``"worker"`` (cluster engines sharing a worker first).
    incremental:
        When True (default), cache deserialized per-engine trees, accept
        delta snapshots, and re-merge only dirty paths per poll.  When
        False, every poll re-deserializes and re-merges every stored
        snapshot (the seed behaviour) and delta snapshots are refused
        with ``"resync"``.
    coalesce:
        When True (default), concurrent polls of the same session share
        one in-flight merge: the first poll (the *leader*) runs the
        merge; every poll arriving while it is in flight joins it and is
        served the leader's result.  Because the leader re-reads dirty
        state after its latency elapses and the fold order is fixed, the
        shared tree is bit-identical to what each joiner's own merge
        would have produced.  Per-client cursors (see ``poll_cursor``)
        track which merge generation each client last saw.
    coalesce_window_s:
        Floor on the leader's in-flight duration: with a window of *w*,
        polls landing within *w* seconds of the leader join it even when
        nothing is dirty (latency would otherwise be 0 and leave no
        window to join).  0 (default) preserves the uncoalesced timing
        exactly for sequential pollers.
    """

    def __init__(
        self,
        env: Environment,
        merge_cost_per_tree: float = 0.05,
        fan_in: Optional[int] = None,
        obs: Optional[Observability] = None,
        incremental: bool = True,
        coalesce: bool = True,
        coalesce_window_s: float = 0.0,
        grouping: str = "chunk",
    ) -> None:
        if merge_cost_per_tree < 0:
            raise ValueError("merge_cost_per_tree must be >= 0")
        if fan_in is not None and fan_in < 2:
            raise ValueError("fan_in must be >= 2")
        if coalesce_window_s < 0:
            raise ValueError("coalesce_window_s must be >= 0")
        if grouping not in ("chunk", "worker"):
            raise ValueError(f"unknown grouping policy {grouping!r}")
        self.env = env
        self.obs = obs or NULL_OBS
        self._snapshot_metric = self.obs.metrics.counter(
            "aida_snapshots_total",
            "Engine snapshots accepted by the AIDA manager",
        )
        self._dropped_metric = self.obs.metrics.counter(
            "aida_snapshots_dropped_total",
            "Engine snapshots dropped by the AIDA manager, by reason",
        )
        self._merge_metric = self.obs.metrics.histogram(
            "aida_merge_seconds", "AIDA merge latency (simulated seconds)"
        )
        self._cache_hit_metric = self.obs.metrics.counter(
            "aida_merge_cache_hits_total",
            "Engine trees served from the incremental merge cache",
        )
        self._cache_miss_metric = self.obs.metrics.counter(
            "aida_merge_cache_misses_total",
            "Engine trees re-merged because their snapshot advanced",
        )
        self._dirty_engines_metric = self.obs.metrics.histogram(
            "aida_merge_dirty_engines",
            "Dirty engines per incremental merge",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self._poll_metric = self.obs.metrics.counter(
            "aida_polls_total", "Merged-result polls served"
        )
        self._coalesced_metric = self.obs.metrics.counter(
            "aida_polls_coalesced_total",
            "Polls served by joining another client's in-flight merge",
        )
        self._redundant_metric = self.obs.metrics.counter(
            "aida_polls_redundant_total",
            "Polls that re-served a generation the client had already seen",
        )
        self._tier_depth_metric = self.obs.metrics.gauge(
            "aida_tier_depth",
            "Combiner tier depth per session (levels, 0 = flat)",
        )
        self._combiner_folds_metric = self.obs.metrics.histogram(
            "aida_combiner_folds",
            "Max concurrent folds per combiner level per poll",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64),
        )
        self._combiner_crash_metric = self.obs.metrics.counter(
            "aida_combiner_crashes_total",
            "Combiner nodes crashed (volatile partial state lost)",
        )
        self._combiner_retired_metric = self.obs.metrics.counter(
            "aida_combiner_retired_total",
            "Leaf combiners retired with engines re-parented",
        )
        self.merge_cost_per_tree = merge_cost_per_tree
        self.fan_in = fan_in
        self.grouping = grouping
        self.incremental = incremental
        self.coalesce = coalesce
        self.coalesce_window_s = coalesce_window_s
        self._snapshots: Dict[str, Dict[str, Snapshot]] = {}
        self._run_ids: Dict[str, int] = {}
        #: Engines banned per session: contributions from a dead engine's
        #: epoch are discarded and any late (zombie) submissions dropped,
        #: so re-processed partitions are never double-counted.
        self._banned: Dict[str, set] = {}
        #: Expected engine count per session (None = untracked).
        self._expected: Dict[str, int] = {}
        #: Sessions currently mid-recovery.
        self._recovering: Dict[str, bool] = {}
        #: (session_id, n_trees, latency) per merge, for the benchmarks.
        self.merge_log: List[tuple] = []
        # -- incremental merge caches --
        #: Per session: engine -> (snapshot sequence, deserialized tree).
        self._engine_trees: Dict[str, Dict[str, Tuple[int, ObjectTree]]] = {}
        #: Object paths whose merged value is stale.
        self._dirty_paths: Dict[str, Set[str]] = {}
        #: Engines whose snapshot advanced since the last poll (cost model).
        self._dirty_engines: Dict[str, Set[str]] = {}
        #: Partial merged tree per session (only dirty paths re-folded).
        self._merged: Dict[str, ObjectTree] = {}
        #: Combiner tier per session (only with ``fan_in`` + incremental);
        #: when present it replaces the flat caches above for that session.
        self._tiers: Dict[str, MergeTree] = {}
        # -- poll coalescing --
        #: In-flight merge per session: joiners wait on ``event`` and are
        #: served the leader's ``(tree_dict, progress)`` result.
        self._inflight: Dict[str, dict] = {}
        #: Monotonic merge generation per session (bumps on dirty folds).
        self._generations: Dict[str, int] = {}
        #: Per session: client_id -> last merge generation served to it.
        self._cursors: Dict[str, Dict[str, int]] = {}
        #: True between a service crash and its restart+recovery.
        self._down = False
        #: Closed sessions: late (zombie) submissions must not resurrect
        #: per-session state that ``drop_session`` already released.
        self._dropped: Set[str] = set()

    # -- ingestion ----------------------------------------------------------
    def submit_snapshot(self, session_id: str, snapshot: Snapshot) -> str:
        """Accept an engine snapshot (latest-per-engine, current run only).

        Returns ``"accepted"``, ``"dropped"`` (banned engine, stale run, or
        out-of-order duplicate), or ``"resync"`` — the snapshot was a delta
        the manager cannot apply (sequence gap, or incremental merging is
        off) and the engine must publish a full keyframe.
        """
        if self._down:
            # Dropped-connection semantics: the submit never reaches the
            # crashed manager; the engine resends on its next cycle.
            return "unavailable"
        if session_id in self._dropped:
            # Zombie submission after close: must not recreate the maps
            # drop_session released.
            self._dropped_metric.inc(reason="closed")
            return "dropped"
        if snapshot.engine_id in self._banned.get(session_id, ()):
            # Late submission from a dead engine's epoch.
            self._dropped_metric.inc(reason="banned")
            return "dropped"
        current_run = self._run_ids.get(session_id, 0)
        if snapshot.run_id > current_run:
            # A rewind happened: everything older is now invalid.
            self._run_ids[session_id] = snapshot.run_id
            self._snapshots[session_id] = {}
            self._invalidate_session_caches(session_id)
            current_run = snapshot.run_id
        elif snapshot.run_id < current_run:
            # Stale snapshot from before the rewind.
            self._dropped_metric.inc(reason="stale_run")
            return "dropped"
        session = self._snapshots.setdefault(session_id, {})
        existing = session.get(snapshot.engine_id)
        if existing is not None and existing.sequence >= snapshot.sequence:
            self._dropped_metric.inc(reason="out_of_order")
            return "dropped"
        # Freeze the payload: the submitter keeps a live reference to the
        # tree dict, and a later in-place mutation must not be able to
        # reach into stored snapshots (or the merged result).
        snapshot = replace(snapshot, tree=copy.deepcopy(snapshot.tree))
        status = self._ingest_tree(session_id, snapshot)
        if status != "accepted":
            self._dropped_metric.inc(reason="gap")
            return status
        session[snapshot.engine_id] = snapshot
        self._snapshot_metric.inc()
        # Straggler detection watches the cumulative progress counter on
        # every accepted snapshot (events/s, snapshot lag per engine).
        self.obs.anomaly.record_snapshot(
            session_id, snapshot.engine_id, snapshot.events_processed
        )
        return "accepted"

    # -- combiner tier ------------------------------------------------------
    def configure_tier(
        self,
        session_id: str,
        engine_ids,
        workers: Optional[Dict[str, str]] = None,
    ) -> Optional[MergeTree]:
        """Build the session's combiner tier (no-op without a fan-in).

        Called by the session layer once engine membership is known;
        idempotent (an existing tier is kept — late calls after spares
        join must not rebuild the topology under in-flight deltas).  Any
        state already ingested through the flat caches migrates into the
        tier, marked dirty so the next poll re-folds it.
        """
        if not self.incremental or self.fan_in is None:
            return None
        if self._down or session_id in self._dropped:
            return None
        tier = self._tiers.get(session_id)
        if tier is not None:
            return tier
        ids = sorted(set(engine_ids))
        if not ids:
            return None
        groups = plan_groups(ids, self.fan_in, self.grouping, workers)
        tier = MergeTree(session_id, self.fan_in, groups)
        self._tiers[session_id] = tier
        for engine_id, (seq, tree) in self._engine_trees.pop(
            session_id, {}
        ).items():
            tier.restore_engine(engine_id, seq, tree)
        self._dirty_paths.pop(session_id, None)
        dirty = self._dirty_engines.pop(session_id, None)
        if dirty:
            tier.dirty_engines.update(dirty)
        self._merged.pop(session_id, None)
        self._tier_depth_metric.set(tier.depth, session=session_id)
        self.obs.events.emit(
            "tier_configured",
            message=(
                f"{session_id}: {tier.n_combiners} combiners over "
                f"{len(ids)} engines, depth {tier.depth}"
            ),
            session=session_id,
            engines=len(ids),
            combiners=tier.n_combiners,
            depth=tier.depth,
            fan_in=self.fan_in,
            grouping=self.grouping,
        )
        return tier

    def tier(self, session_id: str) -> Optional[MergeTree]:
        """The session's combiner tier, if one is configured."""
        return self._tiers.get(session_id)

    def combiner_of(self, session_id: str, engine_id: str) -> Optional[str]:
        """Leaf combiner *engine_id* publishes through (None = flat)."""
        tier = self._tiers.get(session_id)
        if tier is None:
            return None
        return tier.combiner_of(engine_id)

    def crash_combiner(self, session_id: str, combiner_id: str) -> List[str]:
        """Kill one combiner node; returns the engines needing resync."""
        tier = self._tiers.get(session_id)
        if tier is None:
            raise MergeError(f"session {session_id!r} has no combiner tier")
        affected = tier.crash_combiner(combiner_id)
        self._combiner_crash_metric.inc()
        self.obs.events.emit(
            "combiner_crash",
            message=f"{combiner_id} lost; {len(affected)} engines to resync",
            severity="warning",
            session=session_id,
            combiner=combiner_id,
            engines=len(affected),
        )
        return affected

    def retire_combiner(self, session_id: str, combiner_id: str) -> str:
        """Retire a leaf combiner, re-parenting its engines; returns the
        absorbing leaf's id."""
        tier = self._tiers.get(session_id)
        if tier is None:
            raise MergeError(f"session {session_id!r} has no combiner tier")
        target = tier.retire_combiner(combiner_id)
        self._combiner_retired_metric.inc()
        self._tier_depth_metric.set(tier.depth, session=session_id)
        self.obs.events.emit(
            "combiner_retired",
            message=f"{combiner_id} retired; engines re-parented to {target}",
            session=session_id,
            combiner=combiner_id,
            target=target,
        )
        return target

    def _ingest_tree(self, session_id: str, snapshot: Snapshot) -> str:
        """Fold an otherwise-valid snapshot into the per-engine tree cache."""
        if snapshot.base_sequence != 0 and not self.incremental:
            return "resync"  # cannot apply a delta without the cache
        if not self.incremental:
            return "accepted"
        tier = self._tiers.get(session_id)
        if tier is not None:
            # Tiered path: the leaf combiner owns the engine cache.
            return tier.ingest(snapshot)
        trees = self._engine_trees.setdefault(session_id, {})
        dirty_paths = self._dirty_paths.setdefault(session_id, set())
        dirty_engines = self._dirty_engines.setdefault(session_id, set())
        cached = trees.get(snapshot.engine_id)
        if snapshot.base_sequence == 0:
            # Full keyframe: replace the cached tree outright.  Everything
            # it previously contributed and everything it now contributes
            # must be re-folded.
            new_tree = ObjectTree.from_dict(snapshot.tree)
            if cached is not None:
                dirty_paths.update(cached[1].paths())
            dirty_paths.update(new_tree.paths())
            trees[snapshot.engine_id] = (snapshot.sequence, new_tree)
            dirty_engines.add(snapshot.engine_id)
            return "accepted"
        if cached is None or cached[0] != snapshot.base_sequence:
            # Sequence gap (a snapshot was lost, or we never saw a
            # keyframe): the delta cannot be applied safely.
            return "resync"
        tree = cached[1]
        changed = snapshot.tree.get("objects", {})
        for path, obj_data in changed.items():
            if tree.exists(path):
                tree.remove(path)
            tree.put(path, object_from_dict(obj_data))
            dirty_paths.add(path)
        trees[snapshot.engine_id] = (snapshot.sequence, tree)
        if changed:
            dirty_engines.add(snapshot.engine_id)
        return "accepted"

    def begin_run(self, session_id: str, run_id: int) -> None:
        """Invalidate snapshots older than *run_id* (a rewind happened).

        Called by the session service the moment it fans a rewind out, so
        a client polling right after the rewind never sees the *previous*
        run's (complete) results as if they were the new run's.
        """
        current = self._run_ids.get(session_id, 0)
        if run_id > current:
            self._run_ids[session_id] = run_id
            self._snapshots[session_id] = {}
            self._invalidate_session_caches(session_id)

    def _invalidate_session_caches(self, session_id: str) -> None:
        """Drop every incremental cache for a session (rewind/close)."""
        self._engine_trees.pop(session_id, None)
        self._dirty_paths.pop(session_id, None)
        self._dirty_engines.pop(session_id, None)
        self._merged.pop(session_id, None)
        tier = self._tiers.get(session_id)
        if tier is not None:
            # Keep the topology (the engines are the same after a
            # rewind); drop every cached tree and partial.
            tier.reset()

    # -- failure recovery ---------------------------------------------------
    def discard_engine(self, session_id: str, engine_id: str) -> None:
        """Drop a dead engine's stored snapshots and ban future ones.

        The ban is what keeps merged histograms exactly correct under
        recovery: a hung or zombie engine may still submit snapshots for a
        partition that has been re-dispatched elsewhere, and those must
        never reach the merge.
        """
        if session_id in self._dropped:
            # A quarantine racing a close must not repopulate (leak) the
            # ban set / dirty maps for a session already released.
            return
        self._snapshots.get(session_id, {}).pop(engine_id, None)
        self._banned.setdefault(session_id, set()).add(engine_id)
        entry = self._engine_trees.get(session_id, {}).pop(engine_id, None)
        if entry is not None:
            # Every path it contributed must be re-folded without it.
            self._dirty_paths.setdefault(session_id, set()).update(
                entry[1].paths()
            )
            self._dirty_engines.setdefault(session_id, set()).add(engine_id)
        tier = self._tiers.get(session_id)
        if tier is not None:
            tier.discard_engine(engine_id)

    def banned_engines(self, session_id: str) -> set:
        """Engines whose contributions are discarded for this session."""
        return set(self._banned.get(session_id, ()))

    def set_expected_engines(self, session_id: str, count: int) -> None:
        """Declare how many engines the session expects results from."""
        if count < 0:
            raise MergeError("expected engine count must be >= 0")
        self._expected[session_id] = count

    def set_recovering(self, session_id: str, flag: bool) -> None:
        """Mark the session as (not) mid-recovery; gates ``complete``."""
        self._recovering[session_id] = bool(flag)

    def drop_session(self, session_id: str) -> None:
        """Forget a session's snapshots (session close); idempotent.

        The session id is tombstoned so late submissions or quarantines
        from zombie engines cannot resurrect the released maps.
        """
        self._snapshots.pop(session_id, None)
        self._run_ids.pop(session_id, None)
        self._banned.pop(session_id, None)
        self._expected.pop(session_id, None)
        self._recovering.pop(session_id, None)
        self._invalidate_session_caches(session_id)
        self._tiers.pop(session_id, None)
        self._inflight.pop(session_id, None)
        self._generations.pop(session_id, None)
        self._cursors.pop(session_id, None)
        self._dropped.add(session_id)

    def mark_dropped(self, session_id: str) -> None:
        """Re-tombstone a session known (from the journal) to be closed."""
        self._dropped.add(session_id)

    def session_cache_keys(self, session_id: str) -> List[str]:
        """Names of internal maps still holding state for *session_id*.

        Leak audit helper: after ``drop_session`` this must be empty, even
        for sessions that never produced a snapshot or closed abnormally.
        """
        maps = {
            "snapshots": self._snapshots,
            "run_ids": self._run_ids,
            "banned": self._banned,
            "expected": self._expected,
            "recovering": self._recovering,
            "engine_trees": self._engine_trees,
            "dirty_paths": self._dirty_paths,
            "dirty_engines": self._dirty_engines,
            "merged": self._merged,
            "tiers": self._tiers,
            "inflight": self._inflight,
            "generations": self._generations,
            "cursors": self._cursors,
        }
        return sorted(name for name, m in maps.items() if session_id in m)

    # -- service crash / recovery -------------------------------------------
    def crash(self) -> None:
        """The manager process dies: all volatile session state is lost."""
        self._snapshots.clear()
        self._run_ids.clear()
        self._banned.clear()
        self._expected.clear()
        self._recovering.clear()
        self._engine_trees.clear()
        self._dirty_paths.clear()
        self._dirty_engines.clear()
        self._merged.clear()
        self._tiers.clear()
        self._inflight.clear()
        self._generations.clear()
        self._cursors.clear()
        self._dropped.clear()
        self._down = True

    def restart(self) -> None:
        """Bring the endpoints back up (state restored separately)."""
        self._down = False

    def checkpoint_state(self, session_id: str) -> dict:
        """Serialize the session's merge state for a durable checkpoint.

        Each engine entry carries its *full* cached tree (stored
        snapshots may be deltas, which cannot be replayed without the
        base they were applied to).
        """
        snapshots = self._snapshots.get(session_id, {})
        trees = self._engine_trees.get(session_id, {})
        tier = self._tiers.get(session_id)
        engines = {}
        for engine_id, snap in snapshots.items():
            cached = trees.get(engine_id)
            if cached is None and tier is not None:
                cached = tier.engine_entry(engine_id)
            if cached is not None:
                tree_dict = cached[1].to_dict()
            else:
                # Non-incremental mode stores only full keyframes.
                tree_dict = snap.tree
            engines[engine_id] = {
                "sequence": snap.sequence,
                "events_processed": snap.events_processed,
                "total_events": snap.total_events,
                "analysis_version": snap.analysis_version,
                "run_id": snap.run_id,
                "final": snap.final,
                "tree": tree_dict,
            }
        state = {
            "run_id": self._run_ids.get(session_id, 0),
            "expected": self._expected.get(session_id),
            "banned": sorted(self._banned.get(session_id, ())),
            "engines": engines,
        }
        if tier is not None:
            state["tier_groups"] = tier.leaf_groups()
        return state

    def restore_state(self, session_id: str, state: dict) -> None:
        """Rebuild the merge cache from a checkpoint's merge state.

        Every restored path and engine starts dirty, so the first poll
        re-folds the merged tree from the restored engine trees — the
        same association order as a clean run, hence bit-identical.
        """
        self._run_ids[session_id] = state.get("run_id", 0)
        if state.get("expected") is not None:
            self._expected[session_id] = state["expected"]
        if state.get("banned"):
            self._banned[session_id] = set(state["banned"])
        tier: Optional[MergeTree] = None
        if self.incremental and self.fan_in is not None:
            groups = state.get("tier_groups")
            if groups is None:
                groups = plan_groups(
                    sorted(state.get("engines", {})), self.fan_in, "chunk"
                )
            groups = [g for g in groups if g]
            if groups:
                tier = MergeTree(session_id, self.fan_in, groups)
                self._tiers[session_id] = tier
                self._tier_depth_metric.set(tier.depth, session=session_id)
        snapshots: Dict[str, Snapshot] = {}
        trees: Dict[str, Tuple[int, ObjectTree]] = {}
        dirty_paths: Set[str] = set()
        for engine_id, entry in state.get("engines", {}).items():
            snapshots[engine_id] = Snapshot(
                engine_id=engine_id,
                sequence=entry["sequence"],
                events_processed=entry["events_processed"],
                total_events=entry["total_events"],
                analysis_version=entry["analysis_version"],
                run_id=entry["run_id"],
                tree=entry["tree"],
                final=entry.get("final", False),
            )
            if self.incremental:
                tree = ObjectTree.from_dict(entry["tree"])
                if tier is not None:
                    tier.restore_engine(engine_id, entry["sequence"], tree)
                else:
                    trees[engine_id] = (entry["sequence"], tree)
                    dirty_paths.update(tree.paths())
        self._snapshots[session_id] = snapshots
        if self.incremental and tier is None:
            self._engine_trees[session_id] = trees
            self._dirty_paths[session_id] = dirty_paths
            self._dirty_engines[session_id] = set(trees)
            self._merged[session_id] = ObjectTree()

    # -- merge model ----------------------------------------------------------
    def merge_latency(self, n_trees: int) -> float:
        """Simulated seconds to merge *n_trees* snapshot trees from scratch.

        Flat: ``cost * n``.  Combiner tree of fan-in *f*: the combiners
        of one level fold concurrently (each folds at most *f* inputs)
        and the levels run in sequence, so latency is
        ``cost * f * ceil(log_f n)``.
        """
        if n_trees <= 1:
            return self.merge_cost_per_tree * n_trees
        if self.fan_in is None:
            return self.merge_cost_per_tree * n_trees
        levels = math.ceil(math.log(n_trees, self.fan_in))
        return self.merge_cost_per_tree * self.fan_in * max(1, levels)

    def merge_latency_incremental(self, n_dirty: int, n_total: int) -> float:
        """Simulated seconds for an incremental merge (closed-form model).

        Only engines whose snapshot advanced since the last poll cost
        anything.  Flat (``fan_in=None``): ``cost * n_dirty``.  With a
        fan-in *f* the model now accounts for the combiner tier: each of
        the ``ceil(log_f n_total)`` levels folds at most
        ``min(n_dirty, f)`` dirty inputs per combiner concurrently, so
        the charge is ``cost * levels * min(n_dirty, f)``.  Either form
        is capped at the from-scratch :meth:`merge_latency` — an
        incremental re-merge can never be slower than rebuilding.  (A
        session with a *live* tier is charged the tier's exact
        per-level dirty profile instead; this closed form serves the
        cost-model fallback and the benchmarks.)
        """
        if n_dirty <= 0 or n_total <= 0:
            return 0.0
        if self.fan_in is None:
            tiered = self.merge_cost_per_tree * n_dirty
        else:
            levels = max(1, math.ceil(math.log(max(n_total, 2), self.fan_in)))
            tiered = (
                self.merge_cost_per_tree
                * levels
                * min(n_dirty, self.fan_in)
            )
        return min(tiered, self.merge_latency(n_total))

    # -- serving ------------------------------------------------------------
    def _recompute_merged(self, session_id: str) -> ObjectTree:
        """Re-fold only the dirty paths of the cached merged tree.

        The per-path fold runs over the cached engine trees in sorted
        engine order — the exact association order of a from-scratch
        ``merge_from`` fold — so the result is bit-identical to a flat
        merge of the same snapshots.
        """
        cache = self._merged.setdefault(session_id, ObjectTree())
        dirty = self._dirty_paths.get(session_id)
        if not dirty:
            return cache
        trees = self._engine_trees.get(session_id, {})
        ordered = [trees[engine][1] for engine in sorted(trees)]
        for path in sorted(dirty):
            contributions = [
                tree.get(path) for tree in ordered if tree.exists(path)
            ]
            if cache.exists(path):
                cache.remove(path)
            if contributions:
                acc = contributions[0].copy()
                for obj in contributions[1:]:
                    acc += obj
                cache.put(path, acc)
        dirty.clear()
        return cache

    def merged(self, session_id: str, client_id: Optional[str] = None) -> Process:
        """Merge the latest snapshots; value is ``(tree_dict, progress)``.

        Charges the merge latency on the simulated clock, then performs
        the exact merge (only re-folding dirty paths in incremental mode).

        With coalescing on, a poll arriving while another poll's merge is
        in flight *joins* it instead of merging again: it waits for the
        leader's completion and is served the same ``(tree_dict,
        progress)`` — bit-identical to what its own merge would have
        produced, because the leader folds the freshest dirty state in
        the fixed sorted-engine order.  *client_id* (optional) keys the
        per-client sequence cursor, so redundant re-polls are observable
        via :meth:`poll_cursor` and the ``aida_polls_redundant_total``
        counter.
        """
        if self._down:
            raise ServiceUnavailable("AIDA manager is down")
        self._poll_metric.inc()
        entry = self._inflight.get(session_id) if self.coalesce else None
        if entry is not None:
            return self._join_merge(session_id, client_id, entry)
        span = self.obs.tracer.child("aida.merge", session=session_id)
        if self.coalesce:
            entry = {"event": self.env.event(), "waiters": 0}
            self._inflight[session_id] = entry

        def run():
            try:
                session = dict(self._snapshots.get(session_id, {}))
                n_total = len(session)
                if self.incremental:
                    tier = self._tiers.get(session_id)
                    if tier is not None:
                        n_dirty = len(tier.dirty_engines)
                        latency = tier.poll_latency(self.merge_cost_per_tree)
                    else:
                        n_dirty = len(self._dirty_engines.get(session_id, ()))
                        latency = self.merge_latency_incremental(
                            n_dirty, n_total
                        )
                else:
                    n_dirty = n_total
                    latency = self.merge_latency(n_total)
                span.set(n_trees=n_total, n_dirty=n_dirty)
                if entry is not None:
                    # Keep the merge joinable for at least the coalesce
                    # window, even when nothing is dirty yet.
                    latency = max(latency, self.coalesce_window_s)
                if latency:
                    yield self.env.timeout(latency)
                self._merge_metric.observe(latency)
                if self.incremental:
                    # Submissions may have landed while the latency elapsed;
                    # fold whatever is dirty *now* so the served tree matches
                    # the freshest snapshots.  The tier is re-fetched too: a
                    # drop/rewind during the sleep must not fold stale state.
                    session = dict(self._snapshots.get(session_id, {}))
                    n_total = len(session)
                    tier = self._tiers.get(session_id)
                    if tier is not None:
                        n_dirty = len(tier.dirty_engines)
                        self._cache_hit_metric.inc(max(0, n_total - n_dirty))
                        self._cache_miss_metric.inc(n_dirty)
                        self._dirty_engines_metric.observe(n_dirty)
                        for level_folds in tier.refold():
                            self._combiner_folds_metric.observe(level_folds)
                        merged_tree = tier.root_tree
                        tier.dirty_engines.clear()
                    else:
                        dirty_engines = self._dirty_engines.get(session_id)
                        n_dirty = len(dirty_engines) if dirty_engines else 0
                        self._cache_hit_metric.inc(max(0, n_total - n_dirty))
                        self._cache_miss_metric.inc(n_dirty)
                        self._dirty_engines_metric.observe(n_dirty)
                        merged_tree = self._recompute_merged(session_id)
                        if dirty_engines:
                            dirty_engines.clear()
                else:
                    merged_tree = ObjectTree()
                    for snapshot in sorted(
                        session.values(), key=lambda s: s.engine_id
                    ):
                        merged_tree.merge_from(
                            ObjectTree.from_dict(snapshot.tree)
                        )
                generation = self._generations.get(session_id, 0)
                if n_dirty:
                    generation += 1
                    if session_id not in self._dropped:
                        # A zombie merge finishing after close must not
                        # resurrect the maps drop_session released.
                        self._generations[session_id] = generation
                progress = MergeProgress(
                    session_id=session_id,
                    engines_reporting=len(session),
                    events_processed=sum(
                        s.events_processed for s in session.values()
                    ),
                    total_events=sum(s.total_events for s in session.values()),
                    final_engines=sum(1 for s in session.values() if s.final),
                    run_id=self._run_ids.get(session_id, 0),
                    analysis_versions=sorted(
                        {s.analysis_version for s in session.values()}
                    ),
                    merged_at=self.env.now,
                    expected_engines=self._expected.get(session_id),
                    recovering=self._recovering.get(session_id, False),
                    merge_generation=generation,
                )
                self.merge_log.append((session_id, len(session), latency))
                result = (merged_tree.to_dict(), progress)
            except BaseException as exc:
                if entry is not None:
                    if self._inflight.get(session_id) is entry:
                        del self._inflight[session_id]
                    if entry["waiters"] and not entry["event"].triggered:
                        entry["event"].fail(exc)
                raise
            self._note_served(session_id, client_id, generation)
            if entry is not None:
                if self._inflight.get(session_id) is entry:
                    del self._inflight[session_id]
                if entry["waiters"] and not entry["event"].triggered:
                    entry["event"].succeed((result, generation))
                span.set(coalesced_waiters=entry["waiters"])
            return result

        return self.env.process(self.obs.tracer.wrap(span, run()))

    def _join_merge(
        self, session_id: str, client_id: Optional[str], entry: dict
    ) -> Process:
        """Serve a poll from another poll's in-flight merge."""
        entry["waiters"] += 1
        self._coalesced_metric.inc()
        span = self.obs.tracer.child("aida.merge.join", session=session_id)

        def join():
            result, generation = yield entry["event"]
            self._note_served(session_id, client_id, generation)
            return result

        return self.env.process(self.obs.tracer.wrap(span, join()))

    def _note_served(
        self, session_id: str, client_id: Optional[str], generation: int
    ) -> None:
        """Advance the client's sequence cursor; count redundant polls."""
        if client_id is None or session_id in self._dropped:
            return
        cursors = self._cursors.setdefault(session_id, {})
        if cursors.get(client_id) == generation:
            self._redundant_metric.inc()
        cursors[client_id] = generation

    def poll_cursor(
        self, session_id: str, client_id: str
    ) -> Optional[int]:
        """Last merge generation served to *client_id* (``None`` = never)."""
        return self._cursors.get(session_id, {}).get(client_id)

    def merge_generation(self, session_id: str) -> int:
        """Current merge generation of the session (0 = nothing folded)."""
        return self._generations.get(session_id, 0)

    def snapshot_count(self, session_id: str) -> int:
        """Engines with at least one stored snapshot."""
        if self._down:
            raise ServiceUnavailable("AIDA manager is down")
        return len(self._snapshots.get(session_id, {}))
