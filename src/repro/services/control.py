"""Control Service: the authenticated front door of the manager node.

"The client is authorized and authenticated by the control service using
the proxy that was created by the client.  Similarly, the client
authenticates the service for its validity using the mutual authentication
mechanism ... The control service creates an instance of session service
and returns the 'pointer' to this instance to the client" (§3.2).

It also mints the session token that unlocks the cheap RMI polling channel
("none of the RMI objects could be instantiated without first creating a
secure session with the Web Service", §3.7).
"""

from __future__ import annotations

from typing import List, Optional

from repro.grid.security import (
    Certificate,
    CertificateAuthority,
    Credential,
    SecurityContext,
    mutual_authenticate,
)
from repro.services.envelope import ServiceContainer
from repro.services.session import SessionError, SessionInfo, SessionService
from repro.sim import Environment


class ControlService:
    """Mutual authentication + session creation."""

    def __init__(
        self,
        env: Environment,
        ca: CertificateAuthority,
        service_credential: Credential,
        session_service: SessionService,
        container: ServiceContainer,
        site_name: Optional[str] = None,
        replicas=None,
    ) -> None:
        self.env = env
        self.ca = ca
        self.service_credential = service_credential
        self.session_service = session_service
        self.container = container
        #: Site label and replica manager feeding the per-site stats panel
        #: (both optional — bare-service unit tests skip them).
        self.site_name = site_name
        self.replicas = replicas

    def authenticate(self, client_chain: List[Certificate]) -> SecurityContext:
        """GSI-style mutual authentication; returns the security context."""
        return mutual_authenticate(
            client_chain,
            [self.service_credential.certificate],
            self.ca,
            self.env.now,
        )

    def create_session(
        self,
        client_chain: List[Certificate],
        n_engines: Optional[int] = None,
        dataset_hint: Optional[str] = None,
    ):
        """Authenticate, authorize, and create a session (generator op).

        Returns the :class:`~repro.services.session.SessionInfo`; the
        session token is registered with the container so subsequent RMI
        polling calls are accepted.  *dataset_hint* is forwarded to the
        session service for data-affinity engine placement.
        """
        context = self.authenticate(client_chain)
        info: SessionInfo = yield self.env.process(
            self.session_service.obs.tracer.trace_gen(
                "session.create",
                self.session_service.create_session(
                    context, client_chain, n_engines,
                    dataset_hint=dataset_hint,
                ),
                identity=context.identity,
            )
        )
        self.container.issue_token(info.token)
        return info

    def close_session(self, session_id: str):
        """Close a session and revoke its RMI token (generator op).

        Tolerates a session that only exists as a journal tombstone after
        a service crash: the close is then the idempotent no-op and there
        is no live token left to revoke.
        """
        try:
            token = self.session_service.token(session_id)
        except SessionError:
            if not self.session_service.closed_before_crash(session_id):
                raise
            token = None
        result = yield self.env.process(self.session_service.close(session_id))
        if token is not None:
            self.container.revoke_token(token)
        return result

    def stats(self) -> dict:
        """Site load snapshot: container queues + admission occupancy.

        Plain operation for operators and back-pressure-aware clients:
        what each service queue looks like right now, and (when the site
        runs admission control) how the engine slots are spread across
        VOs.
        """
        out: dict = {"services": {}, "admission": None}
        stats = getattr(self.container, "stats", None)
        if stats is not None:
            out["services"] = stats()
        admission = self.session_service.admission
        if admission is not None:
            out["admission"] = admission.stats()
        out["site"] = {
            "name": self.site_name,
            "sessions": self.session_service.active_sessions,
            "resident_replica_mb": (
                round(self.replicas.resident_mb(), 3)
                if self.replicas is not None
                else 0.0
            ),
            "admission_backlog": (
                admission.waiting() if admission is not None else 0
            ),
        }
        return out

    def reconnect_session(
        self, client_chain: List[Certificate], session_id: str
    ) -> SessionInfo:
        """Re-authenticate and re-attach a client after a service restart.

        Plain (non-generator) operation: the session already exists, so
        this only refreshes the security context, re-registers the RMI
        token with the container, and returns a fresh
        :class:`~repro.services.session.SessionInfo`.
        """
        context = self.authenticate(client_chain)
        info = self.session_service.reconnect(
            session_id, context, client_chain
        )
        self.container.issue_token(info.token)
        return info
