"""The IPA Session Manager Service and the engine host it drives.

"At the heart of the system design is the Interactive Parallel Dataset
Analysis Session Manager Service ... A dataset can only be analyzed in the
context of this session" (§3.2).  The session service:

1. creates a WSRF session resource per authorized client,
2. starts the pre-configured number of analysis engines through GRAM on
   the dedicated interactive queue and waits for their ready signals,
3. stages datasets (locator → optional whole-file fetch → splitter →
   scatter → per-engine load directives),
4. stages/reloads analysis code through the managing class loader,
5. fans out run/pause/stop/rewind/step controls,
6. monitors engine heartbeats and recovers from worker failures by
   re-staging orphaned partitions to a spare or surviving engine,
7. shuts everything down at session close ("the analysis engines ... should
   be started for each session and be shutdown at the end of a session",
   §2.3).

:class:`EngineHost` is the job body GRAM lands on each worker: it registers
with the worker registry, then serves directives from its mailbox, charging
simulated time for staging/compute while doing the *real* event processing
through :class:`~repro.engine.engine.AnalysisEngine`.

Failure model
-------------
Engines beat into the registry every ``heartbeat_interval`` seconds.  The
session's monitor loop treats a silent engine (crash, hang, or severed
link) as dead after ``heartbeat_timeout``: the engine is *quarantined* —
its AIDA contributions discarded and future (zombie) submissions banned,
its job cancelled, its partitions marked orphaned — and the orphans are
re-staged from the storage element and re-dispatched, preferring a spare
worker and falling back to the least-loaded survivor.  The AIDA manager's
ban set plus the ``recovering`` gate keep the merged histograms exactly
equal to a failure-free run.

Service faults
--------------
With a :class:`~repro.resilience.checkpoint.DurabilityConfig` attached the
service also survives *its own* crash: every state transition is
journalled write-ahead and the merge state checkpointed periodically to
the manager node's durable store.  ``crash()`` models the service process
dying (volatile state lost, tokens revoked, endpoints raising
:class:`~repro.resilience.faults.ServiceUnavailable`); ``recover()`` is
the cold start that replays the journal, restores the merge cache from
the last committed checkpoint, re-binds still-running engines through the
(surviving) registry, quarantines engines that died during the downtime,
and asks every live engine to republish a full keyframe — so the final
merged trees are bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.core.config import Calibration
    from repro.replica.manager import ReplicaManager

from repro.aida.codec import payload_nbytes
from repro.engine.controls import Command
from repro.engine.engine import AnalysisEngine, Snapshot
from repro.engine.sandbox import CodeBundle
from repro.grid.admission import AdmissionController
from repro.grid.gram import GramGatekeeper, GramSubmission, JobDescription
from repro.grid.nodes import StorageElement, WorkerNode
from repro.grid.scheduler import JobState
from repro.grid.security import Certificate, SecurityContext
from repro.grid.transfer import GridFTPService, TransferError
from repro.obs import NULL_OBS, Observability
from repro.resilience.checkpoint import CheckpointStore, DurabilityConfig
from repro.resilience.faults import ServiceUnavailable
from repro.resilience.heartbeat import HeartbeatMonitor, RecoveryConfig
from repro.resilience.journal import JournalModel, SessionJournal, replay_journal
from repro.services.aida_manager import AIDAManagerService
from repro.services.catalog import DatasetCatalogService
from repro.services.codeloader import ManagingClassLoaderService
from repro.services.content import ContentStore
from repro.services.locator import DatasetLocation, LocatorService
from repro.services.registry import EngineReference, WorkerRegistryService
from repro.services.splitter import PartDescriptor, SplitterService, StageReport
from repro.services.wsrf import ResourceHome, ResourceRef
from repro.sim import Environment, Interrupt, LinkDown, NodeCrash, NodeFailure, NodeHang, Store


class SessionError(Exception):
    """Raised on invalid session operations."""


@dataclass
class StagedDataset:
    """Bookkeeping for the dataset currently attached to a session."""

    dataset_id: str
    size_mb: float
    n_events: int
    content: dict
    parts: List[PartDescriptor]
    fetch_seconds: float
    split_seconds: float
    move_parts_seconds: float
    #: Split strategy the parts were cut under (keys replicas by geometry).
    strategy: str = "by-events"
    #: Replica-cache outcome of this stage (all zero on a cold stage
    #: without a replica manager).
    local_hits: int = 0
    peer_hits: int = 0
    se_hits: int = 0
    cold_parts: int = 0
    fetch_skipped: bool = False
    saved_mb: float = 0.0

    @property
    def stage_seconds(self) -> float:
        """Total staging wall-clock (fetch + split + move parts)."""
        return self.fetch_seconds + self.split_seconds + self.move_parts_seconds


@dataclass
class SessionInfo:
    """What the client receives from ``create_session``."""

    session_id: str
    resource: ResourceRef
    token: str
    n_engines: int
    engine_ids: List[str]


class EngineHost:
    """Per-worker engine process: serves mailbox directives.

    Directives (tuples) pushed by the session service:

    * ``("load_data", part, content)`` — stage a dataset part;
    * ``("load_code", bundle)`` — (re)load analysis code;
    * ``("control", verb, arg)`` — run/pause/stop/rewind/step;
    * ``("takeover", part, content, ack, resume)`` — absorb an orphaned
      partition from a dead engine (failure recovery);
    * ``("republish",)`` — resend the current results as a full keyframe
      (a recovered AIDA manager reconciling its merge cache);
    * ``("shutdown",)`` — leave the loop and deregister.

    With a ``heartbeat_interval`` the host also runs a liveness loop that
    beats into the registry; the beat stops when the node hangs or its
    link goes down, which is what the session monitor detects.  The whole
    directive-handling chain runs inside the *one* job-body process (via
    ``yield from``), so a single kernel interrupt — a crash or hang
    injected by the failure injector — takes the entire engine down
    without leaving orphaned sub-processes behind.
    """

    def __init__(
        self,
        engine_id: str,
        session_id: str,
        registry: WorkerRegistryService,
        aida: AIDAManagerService,
        content_store: ContentStore,
        calibration: "Calibration",
        heartbeat_interval: Optional[float] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.engine_id = engine_id
        self.session_id = session_id
        self.registry = registry
        self.aida = aida
        self.content_store = content_store
        self.calibration = calibration
        self.heartbeat_interval = heartbeat_interval
        self.obs = obs or NULL_OBS
        # Captured at construction time, which happens inside the (traced)
        # create_session / recovery execution — the engine's whole lifetime
        # then parents under the session tree even though GRAM starts it in
        # a fresh simulation process.
        self._trace_parent = self.obs.tracer.current_id
        metrics = self.obs.metrics
        self._events_metric = metrics.counter(
            "engine_events_total", "Events processed by analysis engines"
        )
        self._chunk_metric = metrics.histogram(
            "engine_chunk_seconds",
            "Per-chunk processing time (simulated seconds)",
        )
        self._payload_metric = metrics.counter(
            "aida_snapshot_payload_bytes_total",
            "Serialized snapshot payload bytes published to the AIDA "
            "manager, by snapshot kind (full keyframe vs delta)",
        )
        self.engine = AnalysisEngine(
            engine_id,
            chunk_events=calibration.chunk_events,
            snapshot_every_chunks=calibration.snapshot_every_chunks,
            delta_snapshots=getattr(calibration, "delta_snapshots", True),
            keyframe_every=getattr(calibration, "keyframe_every_snapshots", 8),
        )
        self.mailbox: Optional[Store] = None
        self._part: Optional[PartDescriptor] = None
        #: Every (part, content, batch) this engine is responsible for —
        #: the first from ``load_data``, later ones from takeovers.
        self._owned: List[tuple] = []
        #: Taken-over parts staged but not yet absorbed into the engine.
        self._pending: List[tuple] = []
        self._hb = None

    # -- job body ----------------------------------------------------------
    def body(self, env: Environment, worker: WorkerNode):
        """The GRAM job body: register, then serve directives until shutdown."""
        return self.obs.tracer.trace_gen(
            "engine.run",
            self._serve(env, worker),
            parent_id=self._trace_parent,
            engine=self.engine_id,
            worker=worker.name,
        )

    def _serve(self, env: Environment, worker: WorkerNode):
        cal = self.calibration
        yield env.timeout(cal.engine_startup_s)
        self.mailbox = Store(env)
        self.registry.register(
            EngineReference(
                engine_id=self.engine_id,
                session_id=self.session_id,
                worker=worker.name,
                mailbox=self.mailbox,
                host=self,
            )
        )
        if self.heartbeat_interval:
            self.registry.heartbeat(self.session_id, self.engine_id)
            self._hb = env.process(self._heartbeat(env, worker))
        try:
            while True:
                directive = yield self.mailbox.get()
                keep_going = yield from self._handle(env, worker, directive)
                if not keep_going:
                    break
        except Interrupt as intr:
            if isinstance(intr.cause, NodeHang):
                # A frozen node: it stops heartbeating but never exits on
                # its own; only the session monitor's missing-beat
                # detection notices, and the eventual force-cancel
                # re-raises the original hang as the job's failure.
                self._stop_heartbeat()
                yield env.event()
            raise
        finally:
            self._stop_heartbeat()
            self.registry.deregister(self.session_id, self.engine_id)
        return self.engine.cursor

    def _heartbeat(self, env: Environment, worker: WorkerNode):
        """Beat into the registry until interrupted (engine exit/crash)."""
        try:
            while True:
                yield env.timeout(self.heartbeat_interval)
                if not worker.link_down:
                    self.registry.heartbeat(self.session_id, self.engine_id)
        except Interrupt:
            return

    def _stop_heartbeat(self) -> None:
        if self._hb is not None and self._hb.is_alive:
            self._hb.interrupt("engine-exit")
        self._hb = None

    def _handle(self, env: Environment, worker: WorkerNode, directive: tuple):
        kind = directive[0]
        cal = self.calibration
        if kind == "shutdown":
            return False
        if kind == "load_data":
            _, part, content = directive
            self._part = part
            # Local read of the staged part off the worker disk.
            yield worker.disk_read(part.size_mb)
            batch = self.content_store.events_for(
                content, part.start_event, part.stop_event
            )
            self._owned = [(part, content, batch)]
            self._pending = []
            self.engine.load_data(batch)
            return True
        if kind == "load_code":
            _, bundle = directive
            yield env.timeout(cal.code_load_s)
            self.engine.load_analysis(bundle.instantiate())
            return True
        if kind == "takeover":
            _, part, content, ack, resume = directive
            yield from self._stage_takeover(env, worker, part, content, ack)
            if resume:
                self.engine.controller.run()
                alive = yield from self._process_loop(env, worker)
                return alive
            return True
        if kind == "control":
            _, verb, arg = directive
            self._apply_control(verb, arg)
            if verb in (Command.RUN, Command.STEP):
                alive = yield from self._process_loop(env, worker)
                return alive
            return True
        if kind == "republish":
            # A restarted AIDA manager reconciling: resend everything as a
            # full keyframe so the merge cache converges on the engine's
            # current state regardless of what the checkpoint captured.
            yield env.timeout(cal.rmi_latency_s)
            full = self.engine.take_snapshot(
                final=self.engine.done and not self._pending, full=True
            )
            yield from self._publish(env, full)
            return True
        raise SessionError(f"unknown directive {kind!r}")

    def _stage_takeover(self, env, worker, part, content, ack):
        """Stage an orphaned partition handed over by the session monitor.

        Publishes a fresh *non-final* snapshot before acking, so the AIDA
        merge counts this engine as in-progress again the instant the
        monitor may clear the ``recovering`` gate — the merged results can
        never look complete while a re-dispatched part is unprocessed.
        """
        cal = self.calibration
        yield worker.disk_read(part.size_mb)
        batch = self.content_store.events_for(
            content, part.start_event, part.stop_event
        )
        self._owned.append((part, content, batch))
        if self.engine._data is None or self.engine.done:
            self._absorb((part, content, batch))
        else:
            self._pending.append((part, content, batch))
        yield env.timeout(cal.rmi_latency_s)
        yield from self._publish(env, self.engine.take_snapshot(final=False))
        if ack is not None and not ack.triggered:
            ack.succeed(self.engine_id)

    def _absorb(self, owned: tuple) -> None:
        part, _content, batch = owned
        self._part = part
        self.engine.load_additional_data(batch)

    def _publish(self, env: Environment, snapshot: Snapshot):
        """Submit a snapshot; answer a ``"resync"`` with a full keyframe.

        With a tiered merge the snapshot is stamped with the leaf
        combiner it routes through (the engine itself stays
        topology-blind).  The manager asks for a resync when it cannot
        apply a delta (its per-engine cache was invalidated, or a
        snapshot was lost), so the engine follows up with a full
        snapshot after another RMI hop.
        """
        combiner = self.aida.combiner_of(self.session_id, self.engine_id)
        if combiner is not None:
            snapshot = replace(snapshot, combiner=combiner)
        self._payload_metric.inc(
            payload_nbytes(snapshot.tree),
            kind="full" if snapshot.base_sequence == 0 else "delta",
        )
        status = self.aida.submit_snapshot(self.session_id, snapshot)
        if status == "resync":
            yield env.timeout(self.calibration.rmi_latency_s)
            full = self.engine.take_snapshot(final=snapshot.final, full=True)
            if combiner is not None:
                full = replace(full, combiner=combiner)
            self._payload_metric.inc(payload_nbytes(full.tree), kind="full")
            self.aida.submit_snapshot(self.session_id, full)

    def _apply_control(self, verb: str, arg) -> None:
        controller = self.engine.controller
        if verb == Command.RUN:
            controller.run()
        elif verb == Command.PAUSE:
            controller.pause()
        elif verb == Command.STOP:
            controller.stop()
        elif verb == Command.REWIND:
            controller.rewind()
            if len(self._owned) > 1:
                # Rewind over absorbed takeovers: start from the first
                # owned part and queue the rest again.
                first = self._owned[0]
                self._part = first[0]
                self._pending = list(self._owned[1:])
                self.engine.load_data(first[2])
        elif verb == Command.STEP:
            controller.step(int(arg))
        else:
            raise SessionError(f"unknown control verb {verb!r}")

    def _process_loop(self, env: Environment, worker: WorkerNode):
        """Process chunks until done/paused/stopped, charging model time.

        The engine does the *real* numpy work instantly (wall-clock) while
        the simulated clock advances by the calibrated per-MB analysis
        cost; new directives are absorbed between chunks so controls stay
        responsive at chunk granularity.
        """
        cal = self.calibration
        while True:
            # Absorb any directives that arrived (without blocking).
            while self.mailbox is not None and len(self.mailbox.items):
                directive = yield self.mailbox.get()
                keep_going = yield from self._handle_nested(
                    env, worker, directive
                )
                if not keep_going:
                    return False
            # Re-read each iteration: a mid-run load_data (dataset switch)
            # replaces the part descriptor.
            part = self._part
            chunk_started = env.now
            result = self.engine.process_chunk()
            if result.events > 0 and result.cursor == result.events:
                # First chunk of a fresh pass over a part (start, rewound,
                # or a just-absorbed takeover): charge the one-off serial
                # overhead — reader initialization, first-pass caches
                # (part of Table 2's non-1/N analysis behaviour).
                yield env.timeout(cal.engine_serial_overhead_s * worker.slow_factor)
            if result.events > 0 and part is not None and part.n_events > 0:
                chunk_mb = part.size_mb * (result.events / part.n_events)
                yield env.timeout(
                    chunk_mb * cal.grid_analysis_rate_s_per_mb * worker.slow_factor
                )
            if result.events > 0:
                self._events_metric.inc(result.events, engine=self.engine_id)
                self._chunk_metric.observe(
                    env.now - chunk_started, engine=self.engine_id
                )
            if result.snapshot is not None:
                snapshot = result.snapshot
                if snapshot.final and self._pending:
                    # The current part is done but taken-over parts are
                    # still queued: this is not the engine's last word.
                    snapshot = replace(snapshot, final=False)
                yield env.timeout(cal.rmi_latency_s)
                yield from self._publish(env, snapshot)
            if result.done and self._pending:
                self._absorb(self._pending.pop(0))
                continue
            if result.done or result.state in ("paused", "stopped", "idle"):
                return True

    def _handle_nested(self, env: Environment, worker: WorkerNode, directive: tuple):
        """Handle a directive that arrived mid-run (no recursive run loop)."""
        kind = directive[0]
        if kind == "shutdown":
            return False
        if kind == "control":
            _, verb, arg = directive
            self._apply_control(verb, arg)
            return True
        if kind == "takeover":
            _, part, content, ack, resume = directive
            yield from self._stage_takeover(env, worker, part, content, ack)
            if resume:
                self.engine.controller.run()
            return True
        result = yield from self._handle(env, worker, directive)
        return result


class SessionService:
    """Server-side coordinator of interactive analysis sessions.

    With a :class:`~repro.resilience.heartbeat.RecoveryConfig` the service
    also runs a per-session monitor loop implementing the failure model
    documented in the module docstring; without one (the default) its
    behaviour is identical to the failure-oblivious original.
    """

    def __init__(
        self,
        env: Environment,
        gram: GramGatekeeper,
        registry: WorkerRegistryService,
        catalog: DatasetCatalogService,
        locator: LocatorService,
        splitter: SplitterService,
        codeloader: ManagingClassLoaderService,
        aida: AIDAManagerService,
        ftp: GridFTPService,
        storage: StorageElement,
        content_store: ContentStore,
        calibration: "Calibration",
        session_lifetime: Optional[float] = None,
        recovery: Optional[RecoveryConfig] = None,
        obs: Optional[Observability] = None,
        replicas: Optional["ReplicaManager"] = None,
        durability: Optional[DurabilityConfig] = None,
        container=None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.env = env
        self.obs = obs or NULL_OBS
        #: Replica catalog + staging caches; ``None`` reproduces the
        #: original fetch-split-scatter-every-time behaviour exactly.
        self.replicas = replicas
        self.gram = gram
        self.registry = registry
        self.catalog = catalog
        self.locator = locator
        self.splitter = splitter
        self.codeloader = codeloader
        self.aida = aida
        self.ftp = ftp
        self.storage = storage
        self.content_store = content_store
        self.calibration = calibration
        self.recovery = recovery
        #: Durable journal/checkpoint wiring; ``None`` = the original
        #: all-volatile service (a crash loses every session).
        self.durability = durability
        #: Service container for token revocation on crash / reissue on
        #: recovery (``None`` in bare-service unit tests).
        self.container = container
        #: Per-VO fair-share admission control over engine slots
        #: (``None`` = admit everything, the original behaviour).
        self.admission = admission
        self._session_lifetime = session_lifetime
        self.resources = ResourceHome(env, "session", session_lifetime)
        self._sessions: Dict[str, dict] = {}
        self._down = False
        self._journals: Dict[str, SessionJournal] = {}
        self._checkpoints: Dict[str, CheckpointStore] = {}
        #: Sessions whose journal said "closed" at the last recovery:
        #: closing one of these again is the idempotent no-op (the close
        #: already ran to completion before the crash).
        self._tombstones: set = set()

    @property
    def active_sessions(self) -> int:
        """Open (not yet closed) sessions — the broker's queue-depth signal."""
        return sum(
            1 for session in self._sessions.values() if not session["closed"]
        )

    # -- durability helpers -------------------------------------------------
    def _journal(self, session_id: str) -> Optional[SessionJournal]:
        if self.durability is None:
            return None
        journal = self._journals.get(session_id)
        if journal is None:
            journal = SessionJournal(
                self.durability.store,
                session_id,
                fsync=self.durability.journal_fsync,
            )
            self._journals[session_id] = journal
        return journal

    def _log(self, session_id: str, record_type: str, /, **data) -> None:
        """Append one write-ahead journal record (no simulated time)."""
        journal = self._journal(session_id)
        if journal is not None:
            journal.append(record_type, **data)

    def _checkpoint_store(self, session_id: str) -> Optional[CheckpointStore]:
        if self.durability is None:
            return None
        store = self._checkpoints.get(session_id)
        if store is None:
            store = CheckpointStore(
                self.durability.store,
                session_id,
                keyframe_every=self.durability.checkpoint_keyframe_every,
            )
            self._checkpoints[session_id] = store
        return store

    def _closed_in_journal(self, session_id: str) -> bool:
        """Whether the durable journal tombstones this session as closed."""
        journal = self._journal(session_id)
        if journal is None:
            return False
        return any(r.get("type") == "closed" for r in journal.records())

    def closed_before_crash(self, session_id: str) -> bool:
        """Whether this session's close completed before a service crash.

        True only after a recovery found the journal tombstone; closing
        such a session again is an idempotent no-op rather than a
        ``SessionError``.
        """
        return session_id in self._tombstones

    def _log_stage(
        self,
        session_id: str,
        staged: "StagedDataset",
        keys: Optional[List[str]] = None,
    ) -> None:
        """Journal a completed dataset stage (plan + dispatch map + pins)."""
        if self.durability is None:
            return
        session = self._sessions[session_id]
        self._log(
            session_id,
            "stage",
            dataset_id=staged.dataset_id,
            strategy=staged.strategy,
            size_mb=staged.size_mb,
            n_events=staged.n_events,
            content=staged.content,
            parts=[
                {
                    "part_index": part.part_index,
                    "start_event": part.start_event,
                    "stop_event": part.stop_event,
                    "size_mb": part.size_mb,
                    "worker": part.worker,
                }
                for part in staged.parts
            ],
            assignments={
                engine_id: [part.part_index for part, _content in pairs]
                for engine_id, pairs in session["assignments"].items()
            },
            staged={
                "fetch_seconds": staged.fetch_seconds,
                "split_seconds": staged.split_seconds,
                "move_parts_seconds": staged.move_parts_seconds,
                "local_hits": staged.local_hits,
                "peer_hits": staged.peer_hits,
                "se_hits": staged.se_hits,
                "cold_parts": staged.cold_parts,
                "fetch_skipped": staged.fetch_skipped,
                "saved_mb": staged.saved_mb,
            },
        )
        if keys is not None:
            self._log(session_id, "pins", keys=list(keys))

    # -- lifecycle ----------------------------------------------------------
    def create_session(
        self,
        context: SecurityContext,
        credential_chain: List[Certificate],
        n_engines: Optional[int] = None,
        dataset_hint: Optional[str] = None,
    ):
        """Create a session and start its engines (generator operation).

        Returns a :class:`SessionInfo`.  The engine count defaults to the
        site-policy maximum ("the number of nodes is determined by the Grid
        site policy that is pre-configured on the manager service", §3.2).
        *dataset_hint* names the dataset the session intends to analyze:
        with a replica manager attached, engine placement then prefers
        workers already caching parts of it (data affinity), maximizing
        local hits when the dataset is staged.
        """
        if self._down:
            raise ServiceUnavailable("session service is down")
        policy = self.gram.authz.authorize(context.identity)
        count = n_engines if n_engines is not None else policy.max_engines_per_session
        if count < 1:
            raise SessionError("n_engines must be >= 1")
        total_workers = len(self.gram.scheduler.element)
        if count > total_workers:
            # Engines occupy a worker for the whole session, so requesting
            # more than the site has would deadlock session creation.
            raise SessionError(
                f"requested {count} engines but the site has only "
                f"{total_workers} workers"
            )

        admitted: Optional[Tuple[str, int]] = None
        if self.admission is not None:
            # Per-VO fair-share gate: waits within the VO's quota, or
            # raises RetryAfter (backpressure) when the queue is full.
            vo = self.gram.authz.vo_of(context.identity) or context.identity
            yield from self.admission.acquire(vo, count)
            admitted = (vo, count)
        try:
            info = yield from self._start_session(
                context, credential_chain, count, dataset_hint, admitted
            )
        except BaseException:
            # The session never came up; nothing holds the slots.
            if admitted is not None:
                self.admission.release(*admitted)
            raise
        return info

    def _start_session(
        self,
        context: SecurityContext,
        credential_chain: List[Certificate],
        count: int,
        dataset_hint: Optional[str],
        admitted: Optional[Tuple[str, int]],
    ):
        """Start engines and build the session record (post-admission)."""
        ref = self.resources.create(
            {"owner": context.identity, "state": "starting", "engines": count}
        )
        session_id = ref.resource_id
        hosts: Dict[str, EngineHost] = {}
        heartbeat_interval = (
            self.recovery.heartbeat_interval if self.recovery else None
        )

        def body_factory(index: int):
            host = EngineHost(
                engine_id=f"{session_id}-engine-{index}",
                session_id=session_id,
                registry=self.registry,
                aida=self.aida,
                content_store=self.content_store,
                calibration=self.calibration,
                heartbeat_interval=heartbeat_interval,
                obs=self.obs,
            )
            hosts[host.engine_id] = host
            return host.body

        preferred: Optional[List[str]] = None
        if self.replicas is not None and dataset_hint is not None:
            preferred = self.replicas.preferred_workers(dataset_hint) or None
        submission = yield from self.gram.submit_with_retry(
            JobDescription("ipa-analysis-engine", count=count),
            credential_chain,
            body_factory,
            preferred=preferred,
        )
        # Wait until every engine has signalled ready (Fig. 2 step:
        # "Ready Signal with Reference").
        references = yield self.registry.wait_for(session_id, count)
        token = secrets.token_hex(16)
        session = {
            "ref": ref,
            "context": context,
            "chain": list(credential_chain),
            "submission": submission,
            "spare_submissions": [],
            "hosts": hosts,
            "dead_hosts": {},
            "references": list(references),
            "engine_jobs": {
                f"{session_id}-engine-{index}": job
                for index, job in enumerate(submission.jobs)
            },
            "assignments": {},
            "orphaned": [],
            "pending_acks": [],
            "recoveries": [],
            "redispatches": [],
            "token": token,
            #: (vo, slots) held at the admission controller, if any.
            "admission": admitted,
            "dataset": None,
            "running": False,
            "closing": False,
            "closed": False,
            "unrecoverable": False,
            "rewinds": 0,
            "next_engine_index": count,
            "monitor": None,
            "monitor_proc": None,
            "checkpoint_proc": None,
            "redispatch_proc": None,
            #: engine_id -> worker currently demoted on straggler hints
            #: (diffed against the anomaly monitor's flags each sweep).
            "straggler_hints": {},
            # Trace context of the creating call: recovery work started by
            # the background monitor parents here instead of floating free.
            "trace_parent": self.obs.tracer.current_id,
        }
        self._sessions[session_id] = session
        self.aida.set_expected_engines(session_id, count)
        # Wire the hierarchical merge tier now that engine placement is
        # known (no-op when the manager has no fan-in configured).
        self.aida.configure_tier(
            session_id,
            [reference.engine_id for reference in references],
            workers={
                reference.engine_id: reference.worker
                for reference in references
            },
        )
        self._log(
            session_id,
            "create",
            session_id=session_id,
            owner=context.identity,
            token=token,
            n_engines=count,
            engines={ref_.engine_id: ref_.worker for ref_ in references},
        )
        if self.recovery is not None:
            monitor = HeartbeatMonitor(
                self.env, self.registry, session_id, self.recovery
            )
            for reference in references:
                monitor.watch(reference.engine_id)
            session["monitor"] = monitor
            session["monitor_proc"] = self.env.process(
                self._monitor_loop(session_id)
            )
        if self.durability is not None:
            session["checkpoint_proc"] = self.env.process(
                self._checkpoint_loop(session_id)
            )
        self.resources.set_property(ref, "state", "ready")
        self.obs.events.emit(
            "session_created",
            message=f"{session_id} with {count} engines",
            session=session_id,
            owner=context.identity,
            engines=count,
        )
        return SessionInfo(
            session_id=session_id,
            resource=ref,
            token=token,
            n_engines=count,
            engine_ids=sorted(hosts),
        )

    def _session(self, session_id: str) -> dict:
        if self._down:
            raise ServiceUnavailable("session service is down")
        session = self._sessions.get(session_id)
        if session is None or session["closed"]:
            raise SessionError(f"no active session {session_id!r}")
        return session

    def token(self, session_id: str) -> str:
        """The session's RMI token."""
        return self._session(session_id)["token"]

    # -- dataset staging ------------------------------------------------------
    def add_dataset(
        self,
        session_id: str,
        dataset_id: str,
        strategy: str = "by-events",
        streams: Optional[int] = None,
    ):
        """Stage a dataset onto the session's workers (generator operation).

        With a replica manager attached the catalog is consulted first: a
        warm hit skips the WAN fetch and/or the scatter entirely, a
        partial hit moves only the missing parts (peer-to-peer from other
        worker caches where that is cheaper than the SE spindle), and a
        fully cold stage falls through to the original §3.4 pipeline with
        bit-identical timings.  Returns the :class:`StagedDataset`
        bookkeeping (with the per-phase timing breakdown the benchmarks
        print).
        """
        session = self._session(session_id)
        entry = self.catalog.entry(dataset_id)
        location = self.locator.locate(dataset_id)
        rm = self.replicas

        plan = keys = None
        if rm is not None:
            if session["dataset"] is not None:
                # Dataset switch: release the previous dataset's pins so
                # its cached parts become evictable.
                rm.unpin_session(session_id)
            # Part keys depend only on the split geometry, so plan with a
            # template worker order, then permute the references so cached
            # parts land on the workers that hold them.
            references = session["references"]
            template = self.splitter.plan_parts(
                location, [ref.worker for ref in references], strategy
            )
            keys = rm.part_keys(dataset_id, strategy, template)
            aligned = rm.align_references(references, keys)
            parts = self.splitter.plan_parts(
                location, [ref.worker for ref in aligned], strategy
            )
            plan = rm.plan_sources(location, strategy, parts, keys)
            fetch_skippable = (
                location.origin_host is not None and rm.has_whole(location)
            )
            if not plan.fully_cold or fetch_skippable:
                staged = yield from self._stage_from_replicas(
                    session, session_id, entry, location, strategy,
                    streams, aligned, parts, keys, plan,
                )
                session["dataset"] = staged
                self.resources.set_property(
                    session["ref"], "dataset", dataset_id
                )
                self._log_stage(session_id, staged, keys)
                return staged
            # Fully cold and the fetch decision is unchanged: fall through
            # to the original pipeline (identical timings), registering the
            # produced copies below so the *next* stage is warm.

        tracer = self.obs.tracer
        fetch_seconds = 0.0
        if location.origin_host is not None:
            # "Locate and transfer large dataset file" (Fig. 1): move the
            # whole file from its origin to the storage element.
            started = self.env.now
            fetch_span = tracer.child(
                "stage.fetch",
                phase="move_whole",
                dataset=dataset_id,
                mb=location.size_mb,
            )
            with tracer.activate(fetch_span):
                fetch = self.ftp.transfer_file(
                    _HostProxy(location.origin_host, self.env),
                    self.storage,
                    f"{dataset_id}.whole",
                    location.size_mb,
                    read_disk=False,
                    write_disk=False,
                )
            yield fetch
            fetch_span.finish()
            fetch_seconds = self.env.now - started
            if rm is not None:
                # Record the SE copy so later sessions on this dataset do
                # not re-download it across the WAN.
                rm.record_whole(location)

        references = session["references"]
        workers = [
            self.gram.scheduler.element.worker(ref.worker) for ref in references
        ]
        if location.kind == "database":
            # Contiguous-record DB location (§3.4): server-side range
            # queries replace the serial split pass entirely.
            report: StageReport = yield self.splitter.query_and_scatter(
                location, workers, strategy=strategy, streams=streams
            )
        else:
            report = yield self.splitter.split_and_scatter(
                location, workers, strategy=strategy, streams=streams
            )
        if rm is not None:
            # Bookkeeping only (no simulated time): record every copy the
            # cold pipeline just produced, pinned for this session.
            for part, key in zip(report.parts, keys):
                if location.kind != "database":
                    rm.record_se_part(dataset_id, key, part.size_mb)
                rm.record_worker_part(
                    dataset_id, key, part.worker, part.size_mb, session_id
                )
            rm.note_stage(plan)
        # Hand each engine its part descriptor + the content recipe, and
        # record who owns what (the recovery monitor re-dispatches these
        # assignments when an engine dies).
        session["assignments"] = {}
        session["orphaned"] = []
        for ref, part in zip(references, report.parts):
            session["assignments"][ref.engine_id] = [(part, entry.content)]
            yield ref.mailbox.put(("load_data", part, entry.content))

        staged = StagedDataset(
            dataset_id=dataset_id,
            size_mb=location.size_mb,
            n_events=location.n_events,
            content=entry.content,
            parts=report.parts,
            fetch_seconds=fetch_seconds,
            split_seconds=report.split_seconds,
            move_parts_seconds=report.move_parts_seconds,
            strategy=strategy,
            cold_parts=len(report.parts),
        )
        session["dataset"] = staged
        self.resources.set_property(session["ref"], "dataset", dataset_id)
        self._log_stage(session_id, staged, keys)
        return staged

    @staticmethod
    def _part_file_name(location: DatasetLocation, part: PartDescriptor) -> str:
        """The on-disk part name the splitter's pipelines use."""
        stem = "range" if location.kind == "database" else "part"
        return f"{location.dataset_id}.{stem}{part.part_index}"

    def _stage_from_replicas(
        self,
        session: dict,
        session_id: str,
        entry,
        location: DatasetLocation,
        strategy: str,
        streams: Optional[int],
        references: List,
        parts: List[PartDescriptor],
        keys: List[str],
        plan,
    ):
        """Warm/partial staging driven by the replica catalog (generator).

        Movement policy per part: **local** parts move nothing (the
        assigned worker already caches them); **se** parts (and parts
        just produced by a split/range query) scatter through the
        spindle-serialized GridFTP path; **peer** parts transfer
        point-to-point between worker caches, falling back to the SE if
        the peer fails mid-transfer.  The WAN fetch and serial split run
        only when some part of this geometry must actually be produced.
        """
        rm = self.replicas
        cal = self.calibration
        dataset_id = location.dataset_id
        tracer = self.obs.tracer
        element = self.gram.scheduler.element
        span = tracer.child(
            "stage.replica",
            dataset=dataset_id,
            local=len(plan.local),
            peer=len(plan.peer),
            se=len(plan.se),
            missing=len(plan.missing),
        )
        with tracer.activate(span):
            split_started = self.env.now
            # One SOAP round-trip: the replica-catalog consult.
            yield self.env.timeout(cal.soap_latency_s)

            fetch_seconds = 0.0
            need_split = bool(plan.missing) and location.kind != "database"
            if need_split and not rm.has_whole(location):
                started = self.env.now
                fetch_span = tracer.child(
                    "stage.fetch",
                    phase="move_whole",
                    dataset=dataset_id,
                    mb=location.size_mb,
                )
                with tracer.activate(fetch_span):
                    fetch = self.ftp.transfer_file(
                        _HostProxy(location.origin_host, self.env),
                        self.storage,
                        f"{dataset_id}.whole",
                        location.size_mb,
                        read_disk=False,
                        write_disk=False,
                    )
                yield fetch
                fetch_span.finish()
                fetch_seconds = self.env.now - started
                rm.record_whole(location)
            fetch_skipped = (
                location.origin_host is not None and fetch_seconds == 0.0
            )

            if need_split:
                # The split pass iterates the whole file regardless of how
                # many parts are missing — same cost as a cold split — and
                # leaves *every* part file on the SE.
                split_span = tracer.child(
                    "stage.split",
                    phase="split",
                    mb=location.size_mb,
                    parts=len(parts),
                )
                yield self.env.timeout(
                    self.splitter.split_seconds_for(location, len(parts))
                )
                split_span.finish()
                for part, key in zip(parts, keys):
                    if not rm.se_has_part(key):
                        rm.record_se_part(dataset_id, key, part.size_mb)
            elif plan.missing:
                # Database location: missing parts are server-side range
                # queries, no split pass.
                plan_span = tracer.child(
                    "stage.query_plan", phase="split", parts=len(plan.missing)
                )
                yield self.env.timeout(
                    SplitterService.DEFAULT_PER_QUERY_OVERHEAD
                    * len(plan.missing)
                )
                plan_span.finish()
            split_seconds = self.env.now - split_started

            move_started = self.env.now
            move_span = tracer.child("stage.move_parts", phase="move_parts")
            scatter_sources = plan.se + plan.missing
            waits = []
            with tracer.activate(move_span):
                if scatter_sources:
                    waits.append(
                        self.ftp.scatter(
                            self.storage,
                            [element.worker(s.worker) for s in scatter_sources],
                            [
                                (
                                    self._part_file_name(location, s.part),
                                    s.size_mb,
                                )
                                for s in scatter_sources
                            ],
                            streams=streams,
                        )
                    )
                for s in plan.peer:
                    waits.append(
                        self.env.process(
                            tracer.trace_gen(
                                "stage.peer_fetch",
                                self._peer_fetch(location, s, streams),
                                file=self._part_file_name(location, s.part),
                                src=s.source,
                                dst=s.worker,
                            )
                        )
                    )
            if waits:
                yield self.env.all_of(waits)
            move_span.finish()
            move_seconds = self.env.now - move_started

            for s in plan.local:
                rm.touch(s.worker, s.key, session_id)
            for s in plan.peer + scatter_sources:
                rm.record_worker_part(
                    dataset_id, s.key, s.worker, s.size_mb, session_id
                )
            rm.note_stage(
                plan,
                fetch_skipped_mb=location.size_mb if fetch_skipped else 0.0,
            )
        span.finish(fetch_skipped=fetch_skipped)

        session["assignments"] = {}
        session["orphaned"] = []
        for ref, part in zip(references, parts):
            session["assignments"][ref.engine_id] = [(part, entry.content)]
            yield ref.mailbox.put(("load_data", part, entry.content))

        return StagedDataset(
            dataset_id=dataset_id,
            size_mb=location.size_mb,
            n_events=location.n_events,
            content=entry.content,
            parts=parts,
            fetch_seconds=fetch_seconds,
            split_seconds=split_seconds,
            move_parts_seconds=move_seconds,
            strategy=strategy,
            local_hits=len(plan.local),
            peer_hits=len(plan.peer),
            se_hits=len(plan.se),
            cold_parts=len(plan.missing),
            fetch_skipped=fetch_skipped,
            saved_mb=sum(s.size_mb for s in plan.local)
            + (location.size_mb if fetch_skipped else 0.0),
        )

    def _peer_fetch(self, location: DatasetLocation, source, streams):
        """Pull one part from another worker's cache (generator).

        A peer that fails mid-transfer (crash, link cut, injected fault)
        has its replica record dropped and the part falls back to the
        authoritative SE copy, so a flaky peer can slow a stage down but
        never fail it.
        """
        rm = self.replicas
        element = self.gram.scheduler.element
        dst = element.worker(source.worker)
        name = self._part_file_name(location, source.part)
        try:
            peer = element.worker(source.source)
            yield self.ftp.transfer_file(
                peer, dst, name, source.size_mb, streams=streams
            )
        except (TransferError, LinkDown):
            rm.catalog.unregister(
                source.key, source.source, reason="peer-fetch-failed"
            )
            self.obs.metrics.counter(
                "replica_peer_fallbacks_total",
                "Peer-to-peer part fetches that fell back to the SE",
            ).inc()
            yield self.ftp.transfer_file(
                self.storage, dst, name, source.size_mb, streams=streams
            )

    # -- code staging ------------------------------------------------------
    def stage_code(self, session_id: str, bundle: CodeBundle):
        """Stage analysis code to every engine (generator operation).

        Returns the staging wall-clock in seconds.
        """
        session = self._session(session_id)
        references = session["references"]
        workers = [
            self.gram.scheduler.element.worker(ref.worker) for ref in references
        ]
        tracer = self.obs.tracer
        started = self.env.now
        code_span = tracer.child(
            "stage.code", phase="stage_code", engines=len(references)
        )
        with tracer.activate(code_span):
            staging = self.codeloader.stage(session_id, bundle, workers)
        yield staging
        for ref in references:
            yield ref.mailbox.put(("load_code", bundle))
        code_span.finish()
        self._log(
            session_id,
            "code",
            class_name=bundle.class_name,
            version=bundle.version,
        )
        return self.env.now - started

    def reload_code(
        self,
        session_id: str,
        source: Optional[str] = None,
        parameters: Optional[dict] = None,
    ):
        """Hot-reload: stage an updated bundle (generator operation)."""
        session = self._session(session_id)
        current = self.codeloader.current(session_id)
        updated = current.updated(source=source, parameters=parameters)
        duration = yield self.env.process(self.stage_code(session_id, updated))
        return duration

    # -- control ------------------------------------------------------------
    def control(self, session_id: str, verb: str, argument=None):
        """Fan a control verb out to every engine (generator operation)."""
        session = self._session(session_id)
        if verb == Command.REWIND:
            # Invalidate the previous run's merged results immediately so a
            # poll between rewind and the first new snapshot cannot return
            # stale (complete-looking) data.
            session["rewinds"] = session.get("rewinds", 0) + 1
            self.aida.begin_run(session_id, session["rewinds"])
        if verb in (Command.RUN, Command.STEP):
            session["running"] = True
        elif verb in (Command.PAUSE, Command.STOP):
            session["running"] = False
        # Write-ahead: the verb is durable before any engine acts on it.
        self._log(session_id, "control", verb=verb)
        for ref in session["references"]:
            yield ref.mailbox.put(("control", verb, argument))
        return len(session["references"])

    # -- status ------------------------------------------------------------
    def status(self, session_id: str) -> dict:
        """Summary of the session's engines and staged dataset."""
        session = self._session(session_id)
        dataset = session["dataset"]
        submission = session["submission"]
        all_jobs = list(submission.jobs)
        for spare in session["spare_submissions"]:
            all_jobs.extend(spare.jobs)
        failures = [
            {"job": job.name, "error": str(job.error)}
            for job in all_jobs
            if job.state == "failed"
            and not isinstance(job.error, NodeFailure)
        ]
        node_failures = [
            {"job": job.name, "error": str(job.error)}
            for job in all_jobs
            if job.state == "failed" and isinstance(job.error, NodeFailure)
        ]
        workers_by_engine = {
            ref.engine_id: ref.worker for ref in session["references"]
        }
        return {
            "session_id": session_id,
            "owner": session["context"].identity,
            "n_engines": len(session["references"]),
            "dataset": dataset.dataset_id if dataset else None,
            "job_states": [job.state for job in all_jobs],
            "failures": failures,
            "node_failures": node_failures,
            "recoveries": [
                {
                    "engine_id": record["engine_id"],
                    "cause": str(record["cause"]),
                    "detected_at": record["detected_at"],
                    "parts": record["parts"],
                }
                for record in session["recoveries"]
            ],
            "redispatches": list(session["redispatches"]),
            "orphaned_parts": len(session["orphaned"]),
            "unrecoverable": session["unrecoverable"],
            "engines": [
                {
                    "engine_id": host.engine_id,
                    "worker": workers_by_engine.get(host.engine_id),
                    "cursor": host.engine.cursor,
                    "total": host.engine.total_events,
                    "state": host.engine.controller.state,
                }
                for host in sorted(
                    session["hosts"].values(), key=lambda h: h.engine_id
                )
            ],
        }

    # -- failure recovery ---------------------------------------------------
    def _monitor_loop(self, session_id: str):
        """Detect dead engines by missing heartbeats and recover.

        One sweep per ``RecoveryConfig.period``: first *every* stale engine
        is quarantined (so a multi-failure never re-dispatches onto a
        worker that is itself about to be declared dead), then orphaned
        partitions are re-dispatched.  Runs until the session closes; while
        closing it keeps cancelling hung engines so ``close`` can finish,
        but stops re-dispatching work.

        A service crash interrupts the loop; the ``Interrupt`` is absorbed
        here (an unobserved process failure would crash the kernel).
        """
        try:
            yield from self._monitor_loop_inner(session_id)
        except Interrupt:
            return

    def _monitor_loop_inner(self, session_id: str):
        session = self._sessions[session_id]
        config = self.recovery
        monitor = session["monitor"]
        while True:
            if session["closed"]:
                return
            yield self.env.timeout(config.period)
            if session["closed"]:
                return
            suspects = set(monitor.stale())
            for engine_id in list(monitor.watched):
                job = session["engine_jobs"].get(engine_id)
                if (
                    job is not None
                    and job.state == JobState.FAILED
                    and isinstance(job.error, NodeFailure)
                ):
                    # Job already reported the node failure; no need to
                    # wait out the heartbeat timeout.
                    suspects.add(engine_id)
            for engine_id in sorted(suspects):
                job = session["engine_jobs"].get(engine_id)
                if job is not None and job.state in (
                    JobState.COMPLETED,
                    JobState.CANCELLED,
                    JobState.KILLED,
                ):
                    # Normal termination (shutdown/cancel): not a failure.
                    monitor.unwatch(engine_id)
                    continue
                if (
                    job is not None
                    and job.state == JobState.FAILED
                    and not isinstance(job.error, NodeFailure)
                ):
                    # The user's analysis crashed — surfaced through
                    # status()/the client, not recoverable by re-dispatch.
                    monitor.unwatch(engine_id)
                    continue
                self._quarantine(session_id, engine_id)
            if session["orphaned"] and not session["closing"]:
                # Track the re-dispatch process so a service crash can
                # interrupt it too (it must not act on wiped state).
                proc = self.env.process(
                    self.obs.tracer.trace_gen(
                        "session.redispatch",
                        self._redispatch(session_id),
                        parent_id=session.get("trace_parent"),
                    )
                )
                session["redispatch_proc"] = proc
                yield proc
                session["redispatch_proc"] = None
            self._apply_straggler_hints(session_id)
            self._maybe_end_recovery(session_id)

    def _apply_straggler_hints(self, session_id: str) -> None:
        """One anomaly sweep: demote flagged workers, restore recovered ones.

        Detection is advisory — a flagged worker is deprioritized for new
        placements and its engine's heartbeat timeout shortened, but
        nothing is killed; a recovered engine gets both hints lifted.
        """
        session = self._sessions.get(session_id)
        if session is None or session["closed"]:
            return
        monitor = session["monitor"]
        hints: Dict[str, str] = session["straggler_hints"]
        flagged = {
            report.engine_id for report in self.obs.anomaly.detect(session_id)
        }
        workers_by_engine = {
            ref.engine_id: ref.worker for ref in session["references"]
        }
        scheduler = self.gram.scheduler
        for engine_id in sorted(flagged - set(hints)):
            worker = workers_by_engine.get(engine_id)
            if worker is None:
                continue
            hints[engine_id] = worker
            scheduler.deprioritize(worker)
            if monitor is not None:
                monitor.suspect(engine_id)
        for engine_id in sorted(set(hints) - flagged):
            worker = hints.pop(engine_id)
            scheduler.restore_priority(worker)
            if monitor is not None:
                monitor.clear_suspicion(engine_id)

    def _quarantine(self, session_id: str, engine_id: str) -> dict:
        """Declare an engine dead: ban its results, orphan its partitions."""
        session = self._sessions[session_id]
        monitor = session["monitor"]
        if monitor is not None:
            monitor.unwatch(engine_id)
        job = session["engine_jobs"].get(engine_id)
        cause = (
            job.error
            if job is not None and isinstance(job.error, NodeFailure)
            else NodeCrash(engine_id, "heartbeat timeout")
        )
        # The beat record survives deregistration, so read it first: the
        # fault→detection latency is (now − last beat).
        last_beat = self.registry.last_heartbeat(session_id, engine_id)
        metrics = self.obs.metrics
        if last_beat is not None:
            metrics.histogram(
                "fault_detect_seconds",
                "Engine silence to quarantine latency (simulated seconds)",
            ).observe(self.env.now - last_beat)
        metrics.counter(
            "session_quarantines_total",
            "Engines declared dead and quarantined",
        ).inc()
        self.obs.events.emit(
            "fault_detected",
            message=f"{engine_id} silent ({type(cause).__name__})",
            severity="error",
            session=session_id,
            engine=engine_id,
            cause=type(cause).__name__,
            silence_s=(
                self.env.now - last_beat if last_beat is not None else None
            ),
        )
        recovery_span = self.obs.tracer.start(
            "session.recover",
            parent_id=session.get("trace_parent"),
            engine=engine_id,
            cause=type(cause).__name__,
        )
        # Gate `complete` first, then drop the dead engine's epoch from the
        # merge — zombie submissions are banned from here on.
        self.aida.set_recovering(session_id, True)
        self.aida.discard_engine(session_id, engine_id)
        self.registry.deregister(session_id, engine_id)
        dead_ref = next(
            (r for r in session["references"] if r.engine_id == engine_id),
            None,
        )
        if self.replicas is not None and dead_ref is not None:
            # A dead worker's cache contents are gone with it: drop its
            # replica records so no later stage plans a peer fetch from it.
            self.replicas.invalidate_host(dead_ref.worker)
        session["references"] = [
            ref for ref in session["references"] if ref.engine_id != engine_id
        ]
        self.aida.set_expected_engines(session_id, len(session["references"]))
        host = session["hosts"].pop(engine_id, None)
        if host is not None:
            session["dead_hosts"][engine_id] = host
        orphaned = session["assignments"].pop(engine_id, [])
        session["orphaned"].extend(orphaned)
        record = {
            "engine_id": engine_id,
            "cause": cause,
            "detected_at": self.env.now,
            "parts": len(orphaned),
            "span": recovery_span,
        }
        session["recoveries"].append(record)
        self._log(session_id, "quarantine", engine_id=engine_id)
        # A dead engine is no straggler: drop its anomaly series and any
        # placement/suspicion hints it accumulated while degrading.
        self.obs.anomaly.forget_engine(session_id, engine_id)
        hinted_worker = session["straggler_hints"].pop(engine_id, None)
        if hinted_worker is not None:
            self.gram.scheduler.restore_priority(hinted_worker)
        self.obs.events.emit(
            "engine_quarantined",
            message=f"{engine_id} quarantined, {len(orphaned)} parts orphaned",
            severity="warning",
            session=session_id,
            engine=engine_id,
            worker=dead_ref.worker if dead_ref is not None else None,
            orphaned=len(orphaned),
        )
        if job is not None and job.state not in JobState.TERMINAL:
            self.gram.scheduler.cancel(job.id, cause)
        return record

    def _redispatch(self, session_id: str):
        """Re-stage and re-dispatch orphaned partitions (generator).

        Prefers starting a fresh engine on a spare worker (parallelism is
        preserved); falls back to handing the part to the least-loaded
        surviving engine.  Each part is re-staged from the storage element
        through GridFTP before the takeover directive is sent.

        A service crash interrupts the generator mid-transfer; the
        ``Interrupt`` is absorbed here so the kernel never sees an
        unobserved process failure.
        """
        try:
            yield from self._redispatch_inner(session_id)
        except Interrupt:
            return

    def _redispatch_inner(self, session_id: str):
        session = self._sessions[session_id]
        config = self.recovery
        while (
            session["orphaned"]
            and not session["closing"]
            and not session["closed"]
        ):
            target: Optional[EngineReference] = None
            if self.gram.scheduler.available_worker_count > 0:
                target = yield from self._start_spare(session_id)
            if target is None:
                live = session["references"]
                if not live:
                    session["unrecoverable"] = True
                    self.resources.set_property(
                        session["ref"], "state", "failed"
                    )
                    return
                target = min(
                    live,
                    key=lambda ref: (
                        len(session["assignments"].get(ref.engine_id, [])),
                        ref.engine_id,
                    ),
                )
            worker = self.gram.scheduler.element.worker(target.worker)
            part, content = session["orphaned"][0]
            dataset = session["dataset"]
            dataset_id = dataset.dataset_id if dataset else session_id
            try:
                yield self.ftp.transfer_file(
                    self.storage,
                    worker,
                    f"{dataset_id}.part{part.part_index}.redispatch",
                    part.size_mb,
                    read_disk=True,
                    write_disk=True,
                )
            except (TransferError, LinkDown):
                # Could not reach the target; leave the part orphaned for
                # the next sweep (the target will be quarantined if it is
                # the one that died).
                return
            # Record the assignment *before* waiting for the ack: if the
            # target dies mid-takeover its quarantine re-orphans the part.
            session["orphaned"].pop(0)
            session["assignments"].setdefault(target.engine_id, []).append(
                (part, content)
            )
            if self.replicas is not None and dataset is not None:
                key = self.replicas.catalog.part_key(
                    dataset.dataset_id,
                    dataset.strategy,
                    len(dataset.parts),
                    part.part_index,
                    part.start_event,
                    part.stop_event,
                )
                self.replicas.record_worker_part(
                    dataset.dataset_id,
                    key,
                    target.worker,
                    part.size_mb,
                    session_id,
                )
            session["redispatches"].append(
                {
                    "part": part.part_index,
                    "to": target.engine_id,
                    "at": self.env.now,
                }
            )
            self._log(
                session_id,
                "dispatch",
                engine_id=target.engine_id,
                part_index=part.part_index,
            )
            self.obs.metrics.counter(
                "session_redispatches_total",
                "Orphaned partitions re-dispatched to a live engine",
            ).inc()
            self.obs.events.emit(
                "engine_redispatched",
                message=(
                    f"part {part.part_index} -> {target.engine_id}"
                    f" on {target.worker}"
                ),
                session=session_id,
                engine=target.engine_id,
                worker=target.worker,
                part=part.part_index,
            )
            ack = self.env.event()
            session["pending_acks"].append(ack)
            yield target.mailbox.put(
                ("takeover", part, content, ack, session["running"])
            )
            timeout = self.env.timeout(config.dispatch_ack_timeout)
            yield self.env.any_of([ack, timeout])
            if not ack.triggered:
                # Target went silent mid-takeover; the monitor's next
                # sweep will quarantine it and re-orphan the part.
                return
        self._maybe_end_recovery(session_id)

    def _maybe_end_recovery(self, session_id: str) -> None:
        """Clear the AIDA ``recovering`` gate once recovery truly ended.

        "Ended" means no orphaned parts remain *and* every dispatched
        takeover was acknowledged (the target published a non-final
        snapshot), so ``MergeProgress.complete`` cannot flip true while a
        re-staged partition is still unaccounted for.
        """
        session = self._sessions.get(session_id)
        if session is None:
            return
        session["pending_acks"] = [
            ack for ack in session["pending_acks"] if not ack.triggered
        ]
        if not session["orphaned"] and not session["pending_acks"]:
            self.aida.set_recovering(session_id, False)
            for record in session["recoveries"]:
                span = record.get("span")
                if span is not None and not span.finished:
                    span.finish(recovered_at=self.env.now)
                    self.obs.metrics.histogram(
                        "fault_recover_seconds",
                        "Quarantine to recovery-complete latency "
                        "(simulated seconds)",
                    ).observe(self.env.now - record["detected_at"])

    def _start_spare(self, session_id: str):
        """Submit a replacement engine on a spare worker (generator).

        Returns its :class:`EngineReference`, or ``None`` when no spare
        came up within ``RecoveryConfig.spare_timeout`` (the caller then
        falls back to a surviving engine).
        """
        session = self._sessions[session_id]
        config = self.recovery
        index = session["next_engine_index"]
        session["next_engine_index"] = index + 1
        engine_id = f"{session_id}-engine-{index}"
        host = EngineHost(
            engine_id=engine_id,
            session_id=session_id,
            registry=self.registry,
            aida=self.aida,
            content_store=self.content_store,
            calibration=self.calibration,
            heartbeat_interval=config.heartbeat_interval,
            obs=self.obs,
        )
        try:
            submission = self.gram.submit(
                JobDescription("ipa-analysis-engine", count=1),
                session["chain"],
                lambda _index: host.body,
            )
        except Exception:
            return None
        session["spare_submissions"].append(submission)
        session["engine_jobs"][engine_id] = submission.jobs[0]
        deadline = self.env.now + config.spare_timeout
        while True:
            refs = {
                ref.engine_id: ref for ref in self.registry.engines(session_id)
            }
            if engine_id in refs:
                reference = refs[engine_id]
                break
            if self.env.now >= deadline:
                self.gram.cancel(submission, "spare-timeout")
                return None
            arrival = self.registry.wait_for(
                session_id, self.registry.count(session_id) + 1
            )
            timeout = self.env.timeout(deadline - self.env.now)
            yield self.env.any_of([arrival, timeout])
        session["hosts"][engine_id] = host
        session["references"].append(reference)
        self.aida.set_expected_engines(session_id, len(session["references"]))
        self._log(
            session_id,
            "engine_joined",
            engine_id=engine_id,
            worker=reference.worker,
        )
        if session["monitor"] is not None:
            session["monitor"].watch(engine_id)
        # Ship the session's current analysis code to the newcomer.
        try:
            bundle = self.codeloader.current(session_id)
        except Exception:
            bundle = None
        if bundle is not None:
            worker = self.gram.scheduler.element.worker(reference.worker)
            yield self.codeloader.stage(session_id, bundle, [worker])
            yield reference.mailbox.put(("load_code", bundle))
        return reference

    # -- shutdown ------------------------------------------------------------
    def close(self, session_id: str):
        """End the session: shut engines down, cancel jobs, free the
        resource (generator operation).  Idempotent, and safe when engines
        are dead or hung — stragglers are force-cancelled after the
        recovery grace period instead of deadlocking the close.

        Idempotency holds *across a recovery boundary* too: closing a
        session whose close completed before a service crash finds the
        journal tombstone and returns True without re-running the
        teardown — replicas are not double-unpinned and no ``replica_*``
        metric is double-counted.
        """
        if self._down:
            raise ServiceUnavailable("session service is down")
        session = self._sessions.get(session_id)
        if session is None:
            if session_id in self._tombstones or self._closed_in_journal(
                session_id
            ):
                return True
            raise SessionError(f"no active session {session_id!r}")
        if session["closed"]:
            return True
        session["closing"] = True
        self._log(session_id, "closing")
        for ref in list(session["references"]):
            yield ref.mailbox.put(("shutdown",))
        # Engines drain their mailboxes and exit; wait for the jobs to end,
        # then cancel any stragglers (idempotent on completed jobs).
        done_events = [session["submission"].all_done] + [
            spare.all_done for spare in session["spare_submissions"]
        ]
        all_done = self.env.all_of(done_events)
        if self.recovery is None:
            yield all_done
        else:
            grace = self.env.timeout(self.recovery.close_grace)
            yield self.env.any_of([all_done, grace])
            if not all_done.triggered:
                # A hung engine never read its shutdown directive and the
                # monitor has not (yet) cancelled it: force the issue.
                self.gram.cancel(session["submission"], "session-end")
                for spare in session["spare_submissions"]:
                    self.gram.cancel(spare, "session-end")
                yield all_done
        self.gram.cancel(session["submission"], "session-end")
        for spare in session["spare_submissions"]:
            self.gram.cancel(spare, "session-end")
        self.registry.drop_session(session_id)
        self.codeloader.drop_session(session_id)
        self.aida.drop_session(session_id)
        if self.replicas is not None:
            # The session's cached parts stay behind (warm for the next
            # session) but are no longer pinned against eviction.
            self.replicas.unpin_session(session_id)
        self.resources.set_property(session["ref"], "state", "closed")
        self.resources.destroy(session["ref"])
        session["closed"] = True
        if self.admission is not None and session.get("admission"):
            # Return the VO's engine slots; queued admissions are served
            # weighted-fair off this release.
            self.admission.release(*session["admission"])
            session["admission"] = None
        # Lift any straggler hints the session left on the scheduler and
        # drop its anomaly series.
        for worker in sorted(set(session["straggler_hints"].values())):
            self.gram.scheduler.restore_priority(worker)
        session["straggler_hints"] = {}
        self.obs.anomaly.forget_session(session_id)
        self.obs.events.emit(
            "session_closed",
            message=session_id,
            session=session_id,
        )
        # Tombstone first (write-ahead), then drop the checkpoint file —
        # after a crash the journal alone must prove the close happened.
        self._log(session_id, "closed")
        checkpoints = self._checkpoint_store(session_id)
        if checkpoints is not None:
            checkpoints.delete()
            self._checkpoints.pop(session_id, None)
        return True

    # -- durable checkpoints & service crash/recovery -----------------------
    def _checkpoint_loop(self, session_id: str):
        """Periodically checkpoint one session's merge state (generator).

        Durable writes charge zero simulated time — the loop only adds
        timeout events — so enabling durability does not perturb any
        calibrated timing.  A service crash interrupts the loop.
        """
        config = self.durability
        try:
            while True:
                yield self.env.timeout(config.checkpoint_every_s)
                session = self._sessions.get(session_id)
                if session is None or session["closed"]:
                    return
                self.write_checkpoint(session_id)
        except Interrupt:
            return

    def write_checkpoint(self, session_id: str, torn: bool = False):
        """Write one durable checkpoint now; returns its kind.

        WAL ordering: the journal is synced first, so a checkpoint can
        never describe state the journal cannot explain.  ``torn`` models
        a crash mid-flush (only half the record reaches the disk).
        """
        store = self._checkpoint_store(session_id)
        session = self._sessions.get(session_id)
        if store is None or session is None:
            return None
        journal = self._journal(session_id)
        if journal is not None:
            journal.sync()
        span = self.obs.tracer.start(
            "checkpoint.write",
            parent_id=session.get("trace_parent"),
            session=session_id,
        )
        session_state = {
            "rewinds": session.get("rewinds", 0),
            "running": session["running"],
        }
        merge_state = self.aida.checkpoint_state(session_id)
        kind = store.write(session_state, merge_state, torn=torn)
        span.finish(kind=kind)
        self.obs.metrics.counter(
            "checkpoint_writes_total",
            "Durable session checkpoints written, by kind",
        ).inc(kind=kind)
        if not torn:
            self.obs.events.emit(
                "checkpoint_committed",
                message=f"{session_id} {kind}",
                severity="debug",
                session=session_id,
                kind=kind,
            )
        return kind

    def resync_engines(self, session_id: str, engine_ids):
        """Ask the named live engines to republish full keyframes.

        Generator (mailbox puts yield).  Used after a combiner crash:
        the lost leaf caches heal on each engine's next delta via the
        ``"resync"`` reply, but engines that already *finished* would
        never resend — the explicit republish directive covers them.
        Returns the number of directives sent.
        """
        session = self._sessions.get(session_id)
        if session is None:
            return 0
        wanted = set(engine_ids)
        sent = 0
        for reference in sorted(
            session["references"], key=lambda r: r.engine_id
        ):
            if reference.engine_id in wanted:
                yield reference.mailbox.put(("republish",))
                sent += 1
        return sent

    def crash(self, torn_checkpoint: bool = False) -> None:
        """The manager-node service processes die (injected fault).

        Volatile session state is wiped (the durable store survives,
        minus any unsynced journal tail), every live session's RMI token
        is revoked, the background monitor/checkpoint/re-dispatch loops
        are interrupted, and the AIDA manager goes down too.  With
        ``torn_checkpoint`` each live session first flushes *half* a
        checkpoint record — the crash-mid-flush case recovery must
        tolerate.
        """
        if torn_checkpoint:
            for session_id, session in list(self._sessions.items()):
                if not session["closed"]:
                    self.write_checkpoint(session_id, torn=True)
        for session in self._sessions.values():
            for key in ("monitor_proc", "checkpoint_proc", "redispatch_proc"):
                proc = session.get(key)
                if proc is not None and proc.is_alive:
                    proc.interrupt("service-crash")
                session[key] = None
            if self.container is not None and not session["closed"]:
                self.container.revoke_token(session["token"])
        self._sessions = {}
        self._journals = {}
        self._checkpoints = {}
        self.resources = ResourceHome(
            self.env, "session", self._session_lifetime
        )
        self._down = True
        if self.durability is not None:
            self.durability.store.crash()
        self.aida.crash()
        self.obs.metrics.counter(
            "service_crashes_total",
            "SessionService/AIDA-manager process crashes injected",
        ).inc()
        self.obs.events.emit(
            "service_crash",
            message="session/AIDA manager processes down",
            severity="error",
            torn_checkpoint=torn_checkpoint,
        )

    def recover(self):
        """Cold-start recovery from the durable store (generator).

        Replays every session journal, restores merge state from the last
        committed checkpoint (discarding it if it predates a journalled
        rewind), re-binds still-running engines through the surviving
        registry, quarantines engines that died during the downtime, and
        directs every live engine to republish a full keyframe.  Charges
        one SOAP round-trip plus one merge cost per reconciled engine
        tree on the simulated clock.
        """
        started = self.env.now
        span = self.obs.tracer.start("service.recover")
        self.aida.restart()
        self._down = False
        restored_sessions = 0
        reconciled_engines = 0
        if self.durability is not None:
            store = self.durability.store
            for session_id in SessionJournal.session_ids(store):
                journal = self._journal(session_id)
                model = replay_journal(journal.records())
                if model is None:
                    continue
                if model.closed:
                    # Finished before the crash: only the tombstone
                    # matters (keeps close() idempotent and zombie
                    # submissions dropped).
                    self._tombstones.add(session_id)
                    self.aida.mark_dropped(session_id)
                    continue
                reconciled_engines += yield from self._recover_session(
                    session_id, model
                )
                restored_sessions += 1
        yield self.env.timeout(
            self.calibration.soap_latency_s
            + self.aida.merge_cost_per_tree * reconciled_engines
        )
        metrics = self.obs.metrics
        metrics.counter(
            "service_recovery_total", "Service cold-start recoveries run"
        ).inc()
        if restored_sessions:
            metrics.counter(
                "service_recovery_sessions_total",
                "Sessions rebuilt by service cold-start recovery",
            ).inc(restored_sessions)
        metrics.histogram(
            "service_recovery_seconds",
            "Service restart to sessions-recovered latency "
            "(simulated seconds)",
        ).observe(self.env.now - started)
        span.finish(sessions=restored_sessions, engines=reconciled_engines)
        self.obs.events.emit(
            "service_recovered",
            message=(
                f"{restored_sessions} sessions rebuilt,"
                f" {reconciled_engines} engine trees reconciled"
            ),
            sessions=restored_sessions,
            engines=reconciled_engines,
        )
        return restored_sessions

    def _recover_session(self, session_id: str, model: JournalModel):
        """Rebuild one session from its journal + checkpoint (generator).

        Returns the number of engine trees reconciled (restored from the
        checkpoint or republished by a live engine) — the recovery cost
        model's unit of work.
        """
        span = self.obs.tracer.start(
            "session.recover_state", session=session_id
        )
        ref = self.resources.create(
            {
                "owner": model.owner,
                "state": "recovering",
                "engines": model.n_engines,
            },
            resource_id=session_id,
        )
        if self.container is not None:
            self.container.issue_token(model.token)

        # Re-bind engines that are still alive: the registry (and the
        # EngineHost processes out on the workers) survived the crash.
        live = {r.engine_id: r for r in self.registry.engines(session_id)}
        references: List[EngineReference] = []
        hosts: Dict[str, EngineHost] = {}
        engine_jobs: Dict[str, object] = {}
        next_index = model.n_engines
        for engine_id in list(model.engines) + sorted(model.banned):
            suffix = engine_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                next_index = max(next_index, int(suffix) + 1)
        for engine_id in sorted(model.engines):
            reference = live.get(engine_id)
            if reference is None:
                continue
            references.append(reference)
            if reference.host is not None:
                hosts[engine_id] = reference.host
            job = self.gram.scheduler.running_job_on(reference.worker)
            if job is not None:
                engine_jobs[engine_id] = job
        references.sort(key=lambda r: (r.registered_at, r.engine_id))

        dataset = None
        parts_by_index: Dict[int, PartDescriptor] = {}
        if model.dataset_id is not None:
            parts = [PartDescriptor(**p) for p in model.parts]
            parts_by_index = {p.part_index: p for p in parts}
            staged = model.staged
            dataset = StagedDataset(
                dataset_id=model.dataset_id,
                size_mb=model.size_mb,
                n_events=model.n_events,
                content=model.content,
                parts=parts,
                fetch_seconds=staged.get("fetch_seconds", 0.0),
                split_seconds=staged.get("split_seconds", 0.0),
                move_parts_seconds=staged.get("move_parts_seconds", 0.0),
                strategy=model.strategy,
                local_hits=staged.get("local_hits", 0),
                peer_hits=staged.get("peer_hits", 0),
                se_hits=staged.get("se_hits", 0),
                cold_parts=staged.get("cold_parts", 0),
                fetch_skipped=staged.get("fetch_skipped", False),
                saved_mb=staged.get("saved_mb", 0.0),
            )
        assignments: Dict[str, list] = {}
        for engine_id in model.engines:
            pairs = [
                (parts_by_index[idx], model.content)
                for idx in model.assignments.get(engine_id, [])
                if idx in parts_by_index
            ]
            if pairs:
                assignments[engine_id] = pairs
        orphaned = [
            (parts_by_index[idx], model.content)
            for idx in model.orphaned
            if idx in parts_by_index
        ]

        session = {
            "ref": ref,
            "context": _RecoveredContext(model.owner),
            # The client's credential chain is security material, never
            # journalled: reconnect() refreshes it.  Until then
            # spare-engine GRAM submits fail closed and re-dispatch falls
            # back to surviving engines.
            "chain": [],
            "submission": _RecoveredSubmission(
                self.env, list(engine_jobs.values())
            ),
            "spare_submissions": [],
            "hosts": hosts,
            "dead_hosts": {},
            "references": references,
            "engine_jobs": engine_jobs,
            "assignments": assignments,
            "orphaned": orphaned,
            "pending_acks": [],
            "recoveries": [],
            "redispatches": [],
            "token": model.token,
            # The crashed service never released the VO's engine slots, so
            # a recovered session still holds them: record the grant (do
            # NOT re-acquire) so close() returns the slots.
            "admission": (
                (
                    self.gram.authz.vo_of(model.owner) or model.owner,
                    model.n_engines,
                )
                if self.admission is not None
                else None
            ),
            "dataset": dataset,
            "running": model.running,
            "closing": model.closing,
            "closed": False,
            "unrecoverable": False,
            "rewinds": model.rewinds,
            "next_engine_index": next_index,
            "monitor": None,
            "monitor_proc": None,
            "checkpoint_proc": None,
            "redispatch_proc": None,
            "straggler_hints": {},
            "trace_parent": span.span_id,
        }
        self._sessions[session_id] = session
        self.aida.set_expected_engines(session_id, len(model.engines))
        if model.rewinds:
            self.aida.begin_run(session_id, model.rewinds)

        # Merge state: last committed checkpoint, unless it predates a
        # journalled rewind (then it describes a dead run).
        restored = 0
        loaded = self._checkpoint_store(session_id).load()
        if loaded is not None:
            ckpt_session, merge_state = loaded
            if ckpt_session.get("rewinds", 0) >= model.rewinds:
                self.aida.restore_state(session_id, merge_state)
                restored = len(merge_state.get("engines", {}))
        # Replay the ban set on top (quarantines after the checkpoint).
        for engine_id in sorted(model.banned):
            self.aida.discard_engine(session_id, engine_id)

        # Re-pin this session's replica keys wherever the parts still sit.
        if self.replicas is not None:
            for key in model.pin_keys:
                for cache in self.replicas.caches.values():
                    if key in cache:
                        cache.pin(key, session_id)

        if self.recovery is not None:
            monitor = HeartbeatMonitor(
                self.env, self.registry, session_id, self.recovery
            )
            for reference in references:
                # watch() seeds a fresh beat: nobody gets quarantined just
                # because their last beat predates the downtime.
                monitor.watch(reference.engine_id)
            session["monitor"] = monitor
            session["monitor_proc"] = self.env.process(
                self._monitor_loop(session_id)
            )
        if self.durability is not None:
            session["checkpoint_proc"] = self.env.process(
                self._checkpoint_loop(session_id)
            )

        # Engines the journal believed alive but that deregistered (died)
        # during the downtime: quarantine now; the monitor's sweeps
        # re-dispatch the orphaned parts.
        for engine_id in sorted(model.engines):
            if engine_id not in live:
                self._quarantine(session_id, engine_id)
        if session["orphaned"] or session["pending_acks"]:
            self.aida.set_recovering(session_id, True)

        # Make sure the merge tier exists even when no checkpoint carried
        # its topology (restore_state rebuilds it otherwise); idempotent.
        self.aida.configure_tier(
            session_id,
            [reference.engine_id for reference in references],
            workers={
                reference.engine_id: reference.worker
                for reference in references
            },
        )

        # Ask every live engine for a full keyframe: covers everything the
        # last checkpoint missed, including engines that finished during
        # the downtime (their final snapshot died with the old process).
        resyncs = 0
        for reference in sorted(references, key=lambda r: r.engine_id):
            yield reference.mailbox.put(("republish",))
            resyncs += 1
        if resyncs:
            self.obs.metrics.counter(
                "service_recovery_resyncs_total",
                "Live engines asked to republish a keyframe on recovery",
            ).inc(resyncs)

        self.resources.set_property(ref, "state", "ready")
        if model.dataset_id is not None:
            self.resources.set_property(ref, "dataset", model.dataset_id)
        self._maybe_end_recovery(session_id)
        span.finish(engines=len(references), restored=restored)
        return max(restored, resyncs)

    def reconnect(
        self,
        session_id: str,
        context: SecurityContext,
        credential_chain: List[Certificate],
    ) -> SessionInfo:
        """Re-attach a client to its (possibly recovered) session.

        Refreshes the session's security material — the credential chain
        is lost in a crash (never journalled) and is needed for
        spare-engine GRAM submits — and returns a fresh
        :class:`SessionInfo` carrying the session's RMI token.
        """
        if self._down:
            raise ServiceUnavailable("session service is down")
        session = self._sessions.get(session_id)
        if session is None or session["closed"]:
            if self._closed_in_journal(session_id):
                raise SessionError(f"session {session_id!r} is closed")
            raise SessionError(f"no active session {session_id!r}")
        if session["context"].identity != context.identity:
            raise SessionError(
                "reconnect identity does not match the session owner"
            )
        session["context"] = context
        session["chain"] = list(credential_chain)
        return SessionInfo(
            session_id=session_id,
            resource=session["ref"],
            token=session["token"],
            n_engines=len(session["references"]),
            engine_ids=sorted(
                ref.engine_id for ref in session["references"]
            ),
        )


class _RecoveredContext:
    """Security-context stand-in for a recovered session.

    Only the owner identity survives in the journal; the full context is
    re-established when the client reconnects.
    """

    def __init__(self, identity: str) -> None:
        self.identity = identity


class _RecoveredSubmission:
    """GramSubmission stand-in wrapping the jobs still running on workers.

    Exposes exactly what ``status()``/``close()`` need: the ``jobs`` list
    and an ``all_done`` condition (already-finished jobs are fine — the
    kernel's AllOf handles pre-triggered and empty event lists).
    """

    def __init__(self, env: Environment, jobs: list) -> None:
        self.jobs = list(jobs)
        self.all_done = env.all_of([job.done for job in self.jobs])


class _HostProxy:
    """Minimal Node-like stand-in for a bare network host (origin archive)."""

    def __init__(self, name: str, env: Environment) -> None:
        self.name = name
        self.env = env
        self.disk_files: dict = {}

    def disk_read(self, size_mb: float):  # pragma: no cover - not used
        def io():
            yield self.env.timeout(0.0)

        return self.env.process(io())

    def disk_write(self, size_mb: float):  # pragma: no cover - not used
        return self.disk_read(size_mb)

    def store_file(self, name: str, size_mb: float) -> None:
        self.disk_files[name] = size_mb
