"""The IPA Session Manager Service and the engine host it drives.

"At the heart of the system design is the Interactive Parallel Dataset
Analysis Session Manager Service ... A dataset can only be analyzed in the
context of this session" (§3.2).  The session service:

1. creates a WSRF session resource per authorized client,
2. starts the pre-configured number of analysis engines through GRAM on
   the dedicated interactive queue and waits for their ready signals,
3. stages datasets (locator → optional whole-file fetch → splitter →
   scatter → per-engine load directives),
4. stages/reloads analysis code through the managing class loader,
5. fans out run/pause/stop/rewind/step controls,
6. shuts everything down at session close ("the analysis engines ... should
   be started for each session and be shutdown at the end of a session",
   §2.3).

:class:`EngineHost` is the job body GRAM lands on each worker: it registers
with the worker registry, then serves directives from its mailbox, charging
simulated time for staging/compute while doing the *real* event processing
through :class:`~repro.engine.engine.AnalysisEngine`.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.core.config import Calibration

from repro.engine.controls import Command
from repro.engine.engine import AnalysisEngine, Snapshot
from repro.engine.sandbox import CodeBundle
from repro.grid.gram import GramGatekeeper, GramSubmission, JobDescription
from repro.grid.nodes import StorageElement, WorkerNode
from repro.grid.security import Certificate, SecurityContext
from repro.grid.transfer import GridFTPService
from repro.services.aida_manager import AIDAManagerService
from repro.services.catalog import DatasetCatalogService
from repro.services.codeloader import ManagingClassLoaderService
from repro.services.content import ContentStore
from repro.services.locator import DatasetLocation, LocatorService
from repro.services.registry import EngineReference, WorkerRegistryService
from repro.services.splitter import PartDescriptor, SplitterService, StageReport
from repro.services.wsrf import ResourceHome, ResourceRef
from repro.sim import Environment, Store


class SessionError(Exception):
    """Raised on invalid session operations."""


@dataclass
class StagedDataset:
    """Bookkeeping for the dataset currently attached to a session."""

    dataset_id: str
    size_mb: float
    n_events: int
    content: dict
    parts: List[PartDescriptor]
    fetch_seconds: float
    split_seconds: float
    move_parts_seconds: float

    @property
    def stage_seconds(self) -> float:
        """Total staging wall-clock (fetch + split + move parts)."""
        return self.fetch_seconds + self.split_seconds + self.move_parts_seconds


@dataclass
class SessionInfo:
    """What the client receives from ``create_session``."""

    session_id: str
    resource: ResourceRef
    token: str
    n_engines: int
    engine_ids: List[str]


class EngineHost:
    """Per-worker engine process: serves mailbox directives.

    Directives (tuples) pushed by the session service:

    * ``("load_data", part, content)`` — stage a dataset part;
    * ``("load_code", bundle)`` — (re)load analysis code;
    * ``("control", verb, arg)`` — run/pause/stop/rewind/step;
    * ``("shutdown",)`` — leave the loop and deregister.
    """

    def __init__(
        self,
        engine_id: str,
        session_id: str,
        registry: WorkerRegistryService,
        aida: AIDAManagerService,
        content_store: ContentStore,
        calibration: "Calibration",
    ) -> None:
        self.engine_id = engine_id
        self.session_id = session_id
        self.registry = registry
        self.aida = aida
        self.content_store = content_store
        self.calibration = calibration
        self.engine = AnalysisEngine(
            engine_id,
            chunk_events=calibration.chunk_events,
            snapshot_every_chunks=calibration.snapshot_every_chunks,
        )
        self.mailbox: Optional[Store] = None
        self._part: Optional[PartDescriptor] = None

    # -- job body ----------------------------------------------------------
    def body(self, env: Environment, worker: WorkerNode):
        """The GRAM job body: register, then serve directives until shutdown."""
        cal = self.calibration
        yield env.timeout(cal.engine_startup_s)
        self.mailbox = Store(env)
        self.registry.register(
            EngineReference(
                engine_id=self.engine_id,
                session_id=self.session_id,
                worker=worker.name,
                mailbox=self.mailbox,
            )
        )
        try:
            while True:
                directive = yield self.mailbox.get()
                keep_going = yield env.process(
                    self._handle(env, worker, directive)
                )
                if not keep_going:
                    break
        finally:
            self.registry.deregister(self.session_id, self.engine_id)
        return self.engine.cursor

    def _handle(self, env: Environment, worker: WorkerNode, directive: tuple):
        kind = directive[0]
        cal = self.calibration
        if kind == "shutdown":
            return False
        if kind == "load_data":
            _, part, content = directive
            self._part = part
            # Local read of the staged part off the worker disk.
            yield worker.disk_read(part.size_mb)
            batch = self.content_store.events_for(
                content, part.start_event, part.stop_event
            )
            self.engine.load_data(batch)
            return True
        if kind == "load_code":
            _, bundle = directive
            yield env.timeout(cal.code_load_s)
            self.engine.load_analysis(bundle.instantiate())
            return True
        if kind == "control":
            _, verb, arg = directive
            self._apply_control(verb, arg)
            if verb in (Command.RUN, Command.STEP):
                alive = yield env.process(self._process_loop(env, worker))
                return alive
            return True
        raise SessionError(f"unknown directive {kind!r}")

    def _apply_control(self, verb: str, arg) -> None:
        controller = self.engine.controller
        if verb == Command.RUN:
            controller.run()
        elif verb == Command.PAUSE:
            controller.pause()
        elif verb == Command.STOP:
            controller.stop()
        elif verb == Command.REWIND:
            controller.rewind()
        elif verb == Command.STEP:
            controller.step(int(arg))
        else:
            raise SessionError(f"unknown control verb {verb!r}")

    def _process_loop(self, env: Environment, worker: WorkerNode):
        """Process chunks until done/paused/stopped, charging model time.

        The engine does the *real* numpy work instantly (wall-clock) while
        the simulated clock advances by the calibrated per-MB analysis
        cost; new directives are absorbed between chunks so controls stay
        responsive at chunk granularity.
        """
        cal = self.calibration
        while True:
            # Absorb any directives that arrived (without blocking).
            while self.mailbox is not None and len(self.mailbox.items):
                directive = yield self.mailbox.get()
                keep_going = yield env.process(
                    self._handle_nested(env, worker, directive)
                )
                if not keep_going:
                    return False
            # Re-read each iteration: a mid-run load_data (dataset switch)
            # replaces the part descriptor.
            part = self._part
            result = self.engine.process_chunk()
            if result.events > 0 and result.cursor == result.events:
                # First chunk of a fresh pass (start or just-rewound):
                # charge the one-off serial overhead — reader
                # initialization, first-pass caches (part of Table 2's
                # non-1/N analysis behaviour).
                yield env.timeout(cal.engine_serial_overhead_s)
            if result.events > 0 and part is not None and part.n_events > 0:
                chunk_mb = part.size_mb * (result.events / part.n_events)
                yield env.timeout(chunk_mb * cal.grid_analysis_rate_s_per_mb)
            if result.snapshot is not None:
                yield env.timeout(cal.rmi_latency_s)
                self.aida.submit_snapshot(self.session_id, result.snapshot)
            if result.done or result.state in ("paused", "stopped", "idle"):
                return True

    def _handle_nested(self, env: Environment, worker: WorkerNode, directive: tuple):
        """Handle a directive that arrived mid-run (no recursive run loop)."""
        kind = directive[0]
        if kind == "shutdown":
            return False
        if kind == "control":
            _, verb, arg = directive
            self._apply_control(verb, arg)
            return True
        result = yield env.process(self._handle(env, worker, directive))
        return result


class SessionService:
    """Server-side coordinator of interactive analysis sessions."""

    def __init__(
        self,
        env: Environment,
        gram: GramGatekeeper,
        registry: WorkerRegistryService,
        catalog: DatasetCatalogService,
        locator: LocatorService,
        splitter: SplitterService,
        codeloader: ManagingClassLoaderService,
        aida: AIDAManagerService,
        ftp: GridFTPService,
        storage: StorageElement,
        content_store: ContentStore,
        calibration: "Calibration",
        session_lifetime: Optional[float] = None,
    ) -> None:
        self.env = env
        self.gram = gram
        self.registry = registry
        self.catalog = catalog
        self.locator = locator
        self.splitter = splitter
        self.codeloader = codeloader
        self.aida = aida
        self.ftp = ftp
        self.storage = storage
        self.content_store = content_store
        self.calibration = calibration
        self.resources = ResourceHome(env, "session", session_lifetime)
        self._sessions: Dict[str, dict] = {}

    # -- lifecycle ----------------------------------------------------------
    def create_session(
        self,
        context: SecurityContext,
        credential_chain: List[Certificate],
        n_engines: Optional[int] = None,
    ):
        """Create a session and start its engines (generator operation).

        Returns a :class:`SessionInfo`.  The engine count defaults to the
        site-policy maximum ("the number of nodes is determined by the Grid
        site policy that is pre-configured on the manager service", §3.2).
        """
        policy = self.gram.authz.authorize(context.identity)
        count = n_engines if n_engines is not None else policy.max_engines_per_session
        if count < 1:
            raise SessionError("n_engines must be >= 1")
        total_workers = len(self.gram.scheduler.element)
        if count > total_workers:
            # Engines occupy a worker for the whole session, so requesting
            # more than the site has would deadlock session creation.
            raise SessionError(
                f"requested {count} engines but the site has only "
                f"{total_workers} workers"
            )

        ref = self.resources.create(
            {"owner": context.identity, "state": "starting", "engines": count}
        )
        session_id = ref.resource_id
        hosts: Dict[str, EngineHost] = {}

        def body_factory(index: int):
            host = EngineHost(
                engine_id=f"{session_id}-engine-{index}",
                session_id=session_id,
                registry=self.registry,
                aida=self.aida,
                content_store=self.content_store,
                calibration=self.calibration,
            )
            hosts[host.engine_id] = host
            return host.body

        submission = self.gram.submit(
            JobDescription("ipa-analysis-engine", count=count),
            credential_chain,
            body_factory,
        )
        # Wait until every engine has signalled ready (Fig. 2 step:
        # "Ready Signal with Reference").
        references = yield self.registry.wait_for(session_id, count)
        token = secrets.token_hex(16)
        self._sessions[session_id] = {
            "ref": ref,
            "context": context,
            "submission": submission,
            "hosts": hosts,
            "references": list(references),
            "token": token,
            "dataset": None,
            "closed": False,
        }
        self.resources.set_property(ref, "state", "ready")
        return SessionInfo(
            session_id=session_id,
            resource=ref,
            token=token,
            n_engines=count,
            engine_ids=sorted(hosts),
        )

    def _session(self, session_id: str) -> dict:
        session = self._sessions.get(session_id)
        if session is None or session["closed"]:
            raise SessionError(f"no active session {session_id!r}")
        return session

    def token(self, session_id: str) -> str:
        """The session's RMI token."""
        return self._session(session_id)["token"]

    # -- dataset staging ------------------------------------------------------
    def add_dataset(
        self,
        session_id: str,
        dataset_id: str,
        strategy: str = "by-events",
        streams: Optional[int] = None,
    ):
        """Stage a dataset onto the session's workers (generator operation).

        Runs the full §3.4 pipeline and returns the
        :class:`StagedDataset` bookkeeping (with the per-phase timing
        breakdown the benchmarks print).
        """
        session = self._session(session_id)
        entry = self.catalog.entry(dataset_id)
        location = self.locator.locate(dataset_id)

        fetch_seconds = 0.0
        if location.origin_host is not None:
            # "Locate and transfer large dataset file" (Fig. 1): move the
            # whole file from its origin to the storage element.
            started = self.env.now
            yield self.ftp.transfer_file(
                _HostProxy(location.origin_host, self.env),
                self.storage,
                f"{dataset_id}.whole",
                location.size_mb,
                read_disk=False,
                write_disk=False,
            )
            fetch_seconds = self.env.now - started

        references = session["references"]
        workers = [
            self.gram.scheduler.element.worker(ref.worker) for ref in references
        ]
        if location.kind == "database":
            # Contiguous-record DB location (§3.4): server-side range
            # queries replace the serial split pass entirely.
            report: StageReport = yield self.splitter.query_and_scatter(
                location, workers, strategy=strategy, streams=streams
            )
        else:
            report = yield self.splitter.split_and_scatter(
                location, workers, strategy=strategy, streams=streams
            )
        # Hand each engine its part descriptor + the content recipe.
        for ref, part in zip(references, report.parts):
            yield ref.mailbox.put(("load_data", part, entry.content))

        staged = StagedDataset(
            dataset_id=dataset_id,
            size_mb=location.size_mb,
            n_events=location.n_events,
            content=entry.content,
            parts=report.parts,
            fetch_seconds=fetch_seconds,
            split_seconds=report.split_seconds,
            move_parts_seconds=report.move_parts_seconds,
        )
        session["dataset"] = staged
        self.resources.set_property(session["ref"], "dataset", dataset_id)
        return staged

    # -- code staging ------------------------------------------------------
    def stage_code(self, session_id: str, bundle: CodeBundle):
        """Stage analysis code to every engine (generator operation).

        Returns the staging wall-clock in seconds.
        """
        session = self._session(session_id)
        references = session["references"]
        workers = [
            self.gram.scheduler.element.worker(ref.worker) for ref in references
        ]
        started = self.env.now
        yield self.codeloader.stage(session_id, bundle, workers)
        for ref in references:
            yield ref.mailbox.put(("load_code", bundle))
        return self.env.now - started

    def reload_code(
        self,
        session_id: str,
        source: Optional[str] = None,
        parameters: Optional[dict] = None,
    ):
        """Hot-reload: stage an updated bundle (generator operation)."""
        session = self._session(session_id)
        current = self.codeloader.current(session_id)
        updated = current.updated(source=source, parameters=parameters)
        duration = yield self.env.process(self.stage_code(session_id, updated))
        return duration

    # -- control ------------------------------------------------------------
    def control(self, session_id: str, verb: str, argument=None):
        """Fan a control verb out to every engine (generator operation)."""
        session = self._session(session_id)
        if verb == Command.REWIND:
            # Invalidate the previous run's merged results immediately so a
            # poll between rewind and the first new snapshot cannot return
            # stale (complete-looking) data.
            session["rewinds"] = session.get("rewinds", 0) + 1
            self.aida.begin_run(session_id, session["rewinds"])
        for ref in session["references"]:
            yield ref.mailbox.put(("control", verb, argument))
        return len(session["references"])

    # -- status ------------------------------------------------------------
    def status(self, session_id: str) -> dict:
        """Summary of the session's engines and staged dataset."""
        session = self._session(session_id)
        dataset = session["dataset"]
        submission = session["submission"]
        failures = [
            {"job": job.name, "error": str(job.error)}
            for job in submission.jobs
            if job.state == "failed"
        ]
        return {
            "session_id": session_id,
            "owner": session["context"].identity,
            "n_engines": len(session["references"]),
            "dataset": dataset.dataset_id if dataset else None,
            "job_states": list(submission.states),
            "failures": failures,
            "engines": [
                {
                    "engine_id": host.engine_id,
                    "cursor": host.engine.cursor,
                    "total": host.engine.total_events,
                    "state": host.engine.controller.state,
                }
                for host in sorted(
                    session["hosts"].values(), key=lambda h: h.engine_id
                )
            ],
        }

    # -- shutdown ------------------------------------------------------------
    def close(self, session_id: str):
        """End the session: shut engines down, cancel jobs, free the
        resource (generator operation)."""
        session = self._session(session_id)
        for ref in session["references"]:
            yield ref.mailbox.put(("shutdown",))
        # Engines drain their mailboxes and exit; wait for the jobs to end,
        # then cancel any stragglers (idempotent on completed jobs).
        yield session["submission"].all_done
        self.gram.cancel(session["submission"], "session-end")
        self.registry.drop_session(session_id)
        self.codeloader.drop_session(session_id)
        self.aida.drop_session(session_id)
        self.resources.set_property(session["ref"], "state", "closed")
        self.resources.destroy(session["ref"])
        session["closed"] = True
        return True


class _HostProxy:
    """Minimal Node-like stand-in for a bare network host (origin archive)."""

    def __init__(self, name: str, env: Environment) -> None:
        self.name = name
        self.env = env
        self.disk_files: dict = {}

    def disk_read(self, size_mb: float):  # pragma: no cover - not used
        def io():
            yield self.env.timeout(0.0)

        return self.env.process(io())

    def disk_write(self, size_mb: float):  # pragma: no cover - not used
        return self.disk_read(size_mb)

    def store_file(self, name: str, size_mb: float) -> None:
        self.disk_files[name] = size_mb
