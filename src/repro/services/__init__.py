"""The IPA service layer: the Web Services hosted on the manager node.

Mirrors the reference implementation's manager services (§3, Fig. 2):

=====================  ======================================================
Module                 Paper counterpart
=====================  ======================================================
``envelope``           SOAP transport + service container (Globus GT4 host)
``wsrf``               WS-Resource Framework stateful resources
``control``            Control Service (mutual auth, session creation)
``session``            IPA Session Manager Service
``catalog``            Dataset Catalog Service (browse + query language)
``locator``            Locator Service (dataset id -> physical location)
``splitter``           Splitter Service (split + disperse parts)
``registry``           Worker Registry Server (engine ready signals)
``codeloader``         Managing Class Loader (code staging + hot reload)
``aida_manager``       AIDA Manager (merge + client polling over "RMI")
``content``            Deterministic content store (stand-in for real files)
=====================  ======================================================
"""

from repro.services.envelope import (
    Envelope,
    Fault,
    ServiceContainer,
    ServiceError,
)
from repro.services.wsrf import ResourceHome, ResourceRef, WsrfError

__all__ = [
    "Envelope",
    "Fault",
    "ResourceHome",
    "ResourceRef",
    "ServiceContainer",
    "ServiceError",
    "WsrfError",
]
