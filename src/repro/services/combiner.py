"""Tiered sub-merger combiners: the real §2.5 merge tree.

The paper warns that the single merging component "will become a
bottleneck if there are a large number of users" and prescribes "a
sub-level of components that performs the merging" (§2.5).  This module
is that sub-level: a :class:`MergeTree` of :class:`CombinerNode`\\ s of
degree ``fan_in``.  Engines are routed to *leaf* combiners (grouped by
contiguous chunks of the sorted engine ids, or by worker locality);
each combiner keeps an **incremental partial tree** — the same
delta-snapshot / keyframe / dirty-path machinery the flat manager uses
— and republishes its *combined* dirty paths upward, so a poll at the
root re-folds only the dirty combiner subtrees.

Cost model: the combiners of one level run concurrently on the
simulated clock, so a poll charges ``cost x max(dirty children)`` per
level and sums over the levels — ``O(f * log_f n)`` when everything is
dirty instead of the flat ``O(n)``, and ``O(depth)`` when a single
engine advanced.

Correctness: leaf groups are *contiguous* ranges of the
lexicographically sorted engine ids and every fold (leaf over its
engines, combiner over its children) is the same left fold the flat
manager uses, so the hierarchical fold visits contributions in the
exact global sorted-engine order.  Histogram addition is
order-insensitive up to float association; ntuple/cloud merges are
concatenations, for which the order-preserving grouping makes the
tiered result *exactly* equal to the flat one (property-tested with
exactly-representable fills).

Crash semantics: a leaf combiner crash loses its volatile engine
caches and partial tree — the affected paths are re-folded without the
lost contributions and the engines' next deltas are answered with
``"resync"`` (the injector additionally directs them to republish, so
finished engines heal too).  An *internal* combiner crash only loses
its partial; it rebuilds from its children's intact partials on the
next poll.  A retired leaf re-parents its engines onto the adjacent
leaf, preserving the global fold order.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.aida.serial import from_dict as object_from_dict
from repro.aida.tree import ObjectTree
from repro.engine.engine import Snapshot


class CombinerError(Exception):
    """Raised on invalid combiner-tier operations."""


def plan_groups(
    engine_ids: Sequence[str],
    fan_in: int,
    grouping: str = "chunk",
    workers: Optional[Dict[str, str]] = None,
) -> List[List[str]]:
    """Partition *engine_ids* into leaf-combiner groups of ``<= fan_in``.

    ``"chunk"`` (default) cuts the lexicographically sorted ids into
    contiguous runs — the grouping that keeps the hierarchical fold in
    the flat manager's exact association order.  ``"worker"`` clusters
    engines sharing a worker (rack locality) first, then chunks; it
    trades exact fold order for placement locality, which is fine for
    order-insensitive aggregates.
    """
    if fan_in < 2:
        raise CombinerError("fan_in must be >= 2")
    if grouping not in ("chunk", "worker"):
        raise CombinerError(f"unknown grouping policy {grouping!r}")
    ordered = sorted(set(engine_ids))
    if grouping == "worker" and workers:
        ordered.sort(key=lambda e: (workers.get(e, ""), e))
    return [ordered[i : i + fan_in] for i in range(0, len(ordered), fan_in)]


class CombinerNode:
    """One sub-merger: a partial merged tree plus dirty bookkeeping.

    Leaves (``level == 1``) hold per-engine ``(sequence, tree)`` caches;
    internal nodes hold child combiners.  ``dirty_paths`` are the object
    paths whose partial value is stale; ``dirty_children`` names the
    children (engines or combiners) that made them stale — its size is
    what the level's re-fold costs on the simulated clock.
    """

    __slots__ = (
        "combiner_id",
        "level",
        "parent",
        "children",
        "engines",
        "partial",
        "dirty_paths",
        "dirty_children",
        "low",
        "version",
    )

    def __init__(self, combiner_id: str, level: int, low: str = "") -> None:
        self.combiner_id = combiner_id
        self.level = level
        self.parent: Optional["CombinerNode"] = None
        self.children: List["CombinerNode"] = []
        self.engines: Dict[str, Tuple[int, ObjectTree]] = {}
        self.partial = ObjectTree()
        self.dirty_paths: Set[str] = set()
        self.dirty_children: Set[str] = set()
        #: Smallest engine id this subtree can own (routing key).
        self.low = low
        #: Bumps whenever the partial changes (combined-delta sequence).
        self.version = 0

    @property
    def is_leaf(self) -> bool:
        return self.level == 1

    @property
    def dirty(self) -> bool:
        return bool(self.dirty_paths or self.dirty_children)

    def contributions_in_order(self) -> List[ObjectTree]:
        """Child trees in fold order (sorted engines, or child order)."""
        if self.is_leaf:
            return [self.engines[e][1] for e in sorted(self.engines)]
        return [child.partial for child in self.children]

    def refold(self) -> Tuple[Set[str], int]:
        """Re-fold the dirty paths over the children, left to right.

        Returns ``(changed paths, children folded)`` and clears the
        dirty sets; the changed paths are what this combiner's combined
        delta to its parent carries.
        """
        changed = set(self.dirty_paths)
        folded = len(self.dirty_children)
        if changed:
            ordered = self.contributions_in_order()
            for path in sorted(changed):
                contributions = [
                    tree.get(path) for tree in ordered if tree.exists(path)
                ]
                if self.partial.exists(path):
                    self.partial.remove(path)
                if contributions:
                    acc = contributions[0].copy()
                    for obj in contributions[1:]:
                        acc += obj
                    self.partial.put(path, acc)
            self.version += 1
        self.dirty_paths.clear()
        self.dirty_children.clear()
        return changed, folded

    def reset(self) -> None:
        """Drop all cached state (rewind), keeping the topology."""
        self.engines.clear()
        self.partial = ObjectTree()
        self.dirty_paths.clear()
        self.dirty_children.clear()
        self.version += 1


class MergeTree:
    """The session's combiner tier: leaves over engines, root at the top.

    Built once from the planned leaf *groups*; late engines (spares)
    are routed to the leaf whose ``low`` key precedes their id, so the
    global sorted order stays contiguous.
    """

    def __init__(
        self, session_id: str, fan_in: int, groups: Sequence[Sequence[str]]
    ) -> None:
        if fan_in < 2:
            raise CombinerError("fan_in must be >= 2")
        groups = [list(g) for g in groups if g]
        if not groups:
            raise CombinerError("merge tree needs at least one engine group")
        self.session_id = session_id
        self.fan_in = fan_in
        #: Engines whose contribution advanced since the last poll.
        self.dirty_engines: Set[str] = set()
        self._assignment: Dict[str, CombinerNode] = {}
        self._by_id: Dict[str, CombinerNode] = {}
        leaves: List[CombinerNode] = []
        for index, group in enumerate(groups):
            leaf = CombinerNode(
                f"{session_id}/combiner-1.{index}", 1, low=min(group)
            )
            leaves.append(leaf)
            self._by_id[leaf.combiner_id] = leaf
            for engine_id in group:
                self._assignment[engine_id] = leaf
        self.levels: List[List[CombinerNode]] = [leaves]
        nodes = leaves
        level = 1
        while len(nodes) > 1:
            level += 1
            parents: List[CombinerNode] = []
            for index in range(0, len(nodes), fan_in):
                chunk = nodes[index : index + fan_in]
                parent = CombinerNode(
                    f"{session_id}/combiner-{level}.{index // fan_in}",
                    level,
                    low=chunk[0].low,
                )
                parent.children = list(chunk)
                for child in chunk:
                    child.parent = parent
                parents.append(parent)
                self._by_id[parent.combiner_id] = parent
            self.levels.append(parents)
            nodes = parents
        self.root = nodes[0]
        self._rebuild_routing()

    # -- topology -----------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of combiner levels (1 = a single leaf is the root)."""
        return len(self.levels)

    @property
    def n_combiners(self) -> int:
        return sum(len(level) for level in self.levels)

    @property
    def root_tree(self) -> ObjectTree:
        """The served merged tree (the root combiner's partial)."""
        return self.root.partial

    def combiner_ids(self) -> List[str]:
        """All combiner ids, bottom level first."""
        return [n.combiner_id for level in self.levels for n in level]

    def _rebuild_routing(self) -> None:
        routes = sorted(
            ((leaf.low, leaf) for leaf in self.levels[0]), key=lambda r: r[0]
        )
        self._route_lows = [low for low, _ in routes]
        self._route_leaves = [leaf for _, leaf in routes]

    def leaf_for(self, engine_id: str) -> CombinerNode:
        """The leaf combiner owning *engine_id* (routes unknown ids)."""
        leaf = self._assignment.get(engine_id)
        if leaf is None:
            index = bisect_right(self._route_lows, engine_id) - 1
            leaf = self._route_leaves[max(index, 0)]
            self._assignment[engine_id] = leaf
        return leaf

    def combiner_of(self, engine_id: str) -> str:
        """Id of the leaf combiner *engine_id* publishes through."""
        return self.leaf_for(engine_id).combiner_id

    def leaf_groups(self) -> List[List[str]]:
        """Planned engine membership per leaf, in level order (checkpoint)."""
        members: Dict[CombinerNode, Set[str]] = {
            leaf: set(leaf.engines) for leaf in self.levels[0]
        }
        for engine_id, leaf in self._assignment.items():
            members.setdefault(leaf, set()).add(engine_id)
        return [sorted(members.get(leaf, ())) for leaf in self.levels[0]]

    # -- ingestion ----------------------------------------------------------
    def ingest(self, snapshot: Snapshot) -> str:
        """Fold a validated snapshot into its leaf combiner's cache.

        Mirrors the flat manager's keyframe/delta semantics: a keyframe
        replaces the cached tree and dirties old + new paths; a delta
        whose base does not match the cached sequence returns
        ``"resync"``.
        """
        leaf = self.leaf_for(snapshot.engine_id)
        cached = leaf.engines.get(snapshot.engine_id)
        if snapshot.base_sequence == 0:
            new_tree = ObjectTree.from_dict(snapshot.tree)
            if cached is not None:
                leaf.dirty_paths.update(cached[1].paths())
            leaf.dirty_paths.update(new_tree.paths())
            leaf.engines[snapshot.engine_id] = (snapshot.sequence, new_tree)
            leaf.dirty_children.add(snapshot.engine_id)
            self.dirty_engines.add(snapshot.engine_id)
            return "accepted"
        if cached is None or cached[0] != snapshot.base_sequence:
            return "resync"
        tree = cached[1]
        changed = snapshot.tree.get("objects", {})
        for path, obj_data in changed.items():
            if tree.exists(path):
                tree.remove(path)
            tree.put(path, object_from_dict(obj_data))
            leaf.dirty_paths.add(path)
        leaf.engines[snapshot.engine_id] = (snapshot.sequence, tree)
        if changed:
            leaf.dirty_children.add(snapshot.engine_id)
            self.dirty_engines.add(snapshot.engine_id)
        return "accepted"

    def engine_entry(self, engine_id: str) -> Optional[Tuple[int, ObjectTree]]:
        """The cached ``(sequence, tree)`` for *engine_id*, if any."""
        leaf = self._assignment.get(engine_id)
        if leaf is None:
            return None
        return leaf.engines.get(engine_id)

    def restore_engine(
        self, engine_id: str, sequence: int, tree: ObjectTree
    ) -> None:
        """Seed an engine cache (checkpoint restore); starts dirty."""
        leaf = self.leaf_for(engine_id)
        leaf.engines[engine_id] = (sequence, tree)
        leaf.dirty_paths.update(tree.paths())
        leaf.dirty_children.add(engine_id)
        self.dirty_engines.add(engine_id)

    def discard_engine(self, engine_id: str) -> None:
        """Drop an engine's cache; its paths re-fold without it."""
        leaf = self._assignment.get(engine_id)
        if leaf is None:
            return
        entry = leaf.engines.pop(engine_id, None)
        if entry is None:
            return
        leaf.dirty_paths.update(entry[1].paths())
        leaf.dirty_children.add(engine_id)
        self.dirty_engines.add(engine_id)

    # -- polling ------------------------------------------------------------
    def _dirty_plan(self) -> List[List[Tuple[CombinerNode, int]]]:
        """Per level, the ``(node, n folds)`` a poll would perform now."""
        plan: List[List[Tuple[CombinerNode, int]]] = []
        dirty_prev: Set[CombinerNode] = set()
        for depth, level in enumerate(self.levels):
            entries: List[Tuple[CombinerNode, int]] = []
            for node in level:
                if depth == 0:
                    if node.dirty:
                        entries.append(
                            (node, max(1, len(node.dirty_children)))
                        )
                    continue
                dirty_kids = sum(
                    1 for child in node.children if child in dirty_prev
                )
                if dirty_kids or node.dirty:
                    entries.append(
                        (node, max(1, dirty_kids + len(node.dirty_children)))
                    )
            plan.append(entries)
            dirty_prev = {node for node, _ in entries}
        return plan

    def poll_latency(self, cost: float) -> float:
        """Simulated seconds a poll costs *now*: per level, the
        combiners fold concurrently (charge the level's max fold count);
        levels are sequential (a parent folds its children's outputs).
        """
        if cost <= 0:
            return 0.0
        return sum(
            cost * max(folds for _, folds in entries)
            for entries in self._dirty_plan()
            if entries
        )

    def refold(self) -> List[int]:
        """Re-fold every dirty combiner bottom-up; propagate combined
        deltas upward.  Returns the max fold count per level (the
        concurrent cost profile the latency model charges).
        """
        per_level: List[int] = []
        for level in self.levels:
            level_max = 0
            for node in level:
                if not node.dirty:
                    continue
                changed, folded = node.refold()
                level_max = max(level_max, folded)
                if node.parent is not None and (changed or folded):
                    node.parent.dirty_paths.update(changed)
                    node.parent.dirty_children.add(node.combiner_id)
            per_level.append(level_max)
        return per_level

    # -- failures -----------------------------------------------------------
    def crash_combiner(self, combiner_id: str) -> List[str]:
        """A combiner process dies; its volatile state is lost.

        Leaf: the per-engine caches and partial vanish — affected paths
        re-fold without the lost contributions and the engines' next
        deltas get ``"resync"``.  Returns the affected engine ids so the
        caller can direct them to republish keyframes.  Internal: only
        the partial is lost; it rebuilds from the children's intact
        partials on the next poll (no engine involvement).
        """
        node = self._by_id.get(combiner_id)
        if node is None:
            raise CombinerError(f"unknown combiner {combiner_id!r}")
        stale = set(node.partial.paths())
        node.partial = ObjectTree()
        node.version += 1
        if node.is_leaf:
            affected = sorted(node.engines)
            for _, tree in node.engines.values():
                stale.update(tree.paths())
            node.engines.clear()
            node.dirty_paths.update(stale)
            node.dirty_children.update(affected)
            self.dirty_engines.update(affected)
            return affected
        for child in node.children:
            stale.update(child.partial.paths())
            node.dirty_children.add(child.combiner_id)
        node.dirty_paths.update(stale)
        return []

    def retire_combiner(self, combiner_id: str) -> str:
        """Remove a leaf combiner, re-parenting its engines onto the
        adjacent leaf (the previous one in level order, else the next).

        Adjacent re-parenting keeps the global engine fold order
        contiguous, so the served tree is unchanged (up to float
        association) once the moved paths re-fold.  Returns the id of
        the leaf that absorbed the engines.
        """
        node = self._by_id.get(combiner_id)
        if node is None:
            raise CombinerError(f"unknown combiner {combiner_id!r}")
        if not node.is_leaf:
            raise CombinerError("only leaf combiners can be retired")
        leaves = self.levels[0]
        if len(leaves) == 1:
            raise CombinerError("cannot retire the only combiner")
        index = leaves.index(node)
        target = leaves[index - 1] if index > 0 else leaves[index + 1]
        for engine_id, entry in node.engines.items():
            target.engines[engine_id] = entry
            target.dirty_paths.update(entry[1].paths())
            target.dirty_children.add(engine_id)
            self.dirty_engines.add(engine_id)
        node.engines = {}
        for engine_id, leaf in list(self._assignment.items()):
            if leaf is node:
                self._assignment[engine_id] = target
        target.low = min(target.low, node.low)
        parent = node.parent
        if parent is not None:
            parent.dirty_paths.update(node.partial.paths())
            parent.dirty_children.add(node.combiner_id)
            parent.children.remove(node)
        leaves.remove(node)
        del self._by_id[node.combiner_id]
        # Prune ancestors left childless by the removal.
        while (
            parent is not None
            and not parent.children
            and parent.parent is not None
        ):
            grand = parent.parent
            grand.dirty_paths.update(parent.partial.paths())
            grand.dirty_children.add(parent.combiner_id)
            grand.children.remove(parent)
            self.levels[parent.level - 1].remove(parent)
            del self._by_id[parent.combiner_id]
            parent = grand
        self._rebuild_routing()
        return target.combiner_id

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> None:
        """Drop every cache (rewind), keeping topology and routing."""
        for level in self.levels:
            for node in level:
                node.reset()
        self.dirty_engines.clear()
