"""Worker Registry Server: analysis engines announce themselves here.

Fig. 2: after GRAM starts an engine job on a worker, the engine sends a
"ready signal with reference" to the registry; the session service waits on
the registry until the expected number of engines is up, then hands out the
references for data/code staging and control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import NULL_OBS, Observability
from repro.sim import Environment, Event


class RegistryError(Exception):
    """Raised on duplicate or unknown engine registrations."""


@dataclass
class EngineReference:
    """What an engine publishes: identity, placement, and its mailbox.

    The ``mailbox`` is the engine host's command queue (a simulation
    ``Store``); services push staging/control directives into it — the
    stand-in for the remote references of the Java implementation.
    """

    engine_id: str
    session_id: str
    worker: str
    mailbox: Any
    registered_at: float = 0.0
    #: Back-reference to the EngineHost serving this engine.  The registry
    #: survives a session-service crash, so recovery uses it to re-bind
    #: the rebuilt session to the still-running hosts.
    host: Any = None


class WorkerRegistryService:
    """Tracks live engines per session and wakes waiters on arrival."""

    def __init__(
        self, env: Environment, obs: Optional[Observability] = None
    ) -> None:
        self.env = env
        self.obs = obs or NULL_OBS
        self._engines: Dict[str, Dict[str, EngineReference]] = {}
        self._waiters: Dict[str, List[tuple]] = {}
        #: (session_id, engine_id) -> simulated time of the last heartbeat.
        #: Survives deregistration so a monitor can still inspect the final
        #: beat of a dead engine.
        self._heartbeats: Dict[tuple, float] = {}
        self._gap_metric = self.obs.metrics.histogram(
            "heartbeat_gap_seconds",
            "Gap between consecutive beats of one engine (simulated seconds)",
        )

    # -- engine side ---------------------------------------------------------
    def register(self, reference: EngineReference) -> None:
        """Record a ready engine; duplicate ids within a session rejected."""
        session = self._engines.setdefault(reference.session_id, {})
        if reference.engine_id in session:
            raise RegistryError(
                f"engine {reference.engine_id!r} already registered"
            )
        reference.registered_at = self.env.now
        session[reference.engine_id] = reference
        self._notify(reference.session_id)

    def deregister(self, session_id: str, engine_id: str) -> None:
        """Remove an engine (engine shutdown); idempotent."""
        self._engines.get(session_id, {}).pop(engine_id, None)

    def heartbeat(self, session_id: str, engine_id: str) -> None:
        """Record a liveness beat from an engine at the current time."""
        key = (session_id, engine_id)
        now = self.env.now
        previous = self._heartbeats.get(key)
        if previous is not None:
            self._gap_metric.observe(now - previous)
            self.obs.anomaly.record_heartbeat(
                session_id, engine_id, now - previous
            )
        self._heartbeats[key] = now

    def last_heartbeat(self, session_id: str, engine_id: str) -> Optional[float]:
        """Simulated time of the engine's last beat, or ``None``."""
        return self._heartbeats.get((session_id, engine_id))

    def drop_session(self, session_id: str) -> None:
        """Forget every engine of a session (session close); idempotent."""
        self._engines.pop(session_id, None)
        self._waiters.pop(session_id, None)
        for key in [k for k in self._heartbeats if k[0] == session_id]:
            del self._heartbeats[key]

    # -- session side ---------------------------------------------------------
    def engines(self, session_id: str) -> List[EngineReference]:
        """References of currently registered engines, in arrival order."""
        return sorted(
            self._engines.get(session_id, {}).values(),
            key=lambda ref: (ref.registered_at, ref.engine_id),
        )

    def count(self, session_id: str) -> int:
        """Number of ready engines for the session."""
        return len(self._engines.get(session_id, {}))

    def sessions(self) -> List[str]:
        """Session ids that currently have at least one registered engine.

        Concurrency diagnostics: how many sessions the site is actually
        serving engines for right now (sorted for determinism).
        """
        return sorted(s for s, engines in self._engines.items() if engines)

    def wait_for(self, session_id: str, count: int) -> Event:
        """Event that fires once *count* engines are registered.

        Fires immediately (already-triggered event) if the count is already
        met.
        """
        if count < 0:
            raise RegistryError("count must be >= 0")
        event = self.env.event()
        if self.count(session_id) >= count:
            event.succeed(self.engines(session_id))
            return event
        self._waiters.setdefault(session_id, []).append((count, event))
        return event

    def _notify(self, session_id: str) -> None:
        current = self.count(session_id)
        waiters = self._waiters.get(session_id, [])
        remaining = []
        for count, event in waiters:
            if current >= count and not event.triggered:
                event.succeed(self.engines(session_id))
            elif not event.triggered:
                remaining.append((count, event))
        if remaining:
            self._waiters[session_id] = remaining
        else:
            self._waiters.pop(session_id, None)
