"""Locator Service: dataset id → physical location + splitter endpoint.

"This dataset must be submitted to the locator service that will resolve
the location of the dataset from the dataset identifier.  The location
could be a URL to an FTP server or a set of contiguous records in a
database server.  In addition to the location of the dataset, the locator
service returns the location of the splitter service" (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class LocatorError(Exception):
    """Raised when a dataset id cannot be resolved."""


@dataclass(frozen=True)
class DatasetLocation:
    """Where a dataset physically lives and how to split it.

    Attributes
    ----------
    dataset_id:
        The id that was resolved.
    kind:
        ``"gridftp"`` (file on a storage element) or ``"database"``
        (contiguous records in a DB server) — both forms named in §3.4.
    host:
        Storage host name on the network.
    path:
        File path or table/range locator on that host.
    size_mb:
        Physical size (drives transfer times).
    n_events:
        Record count.
    splitter_host:
        Host running the splitter for this dataset (usually the SE).
    origin_host:
        Where the file originally lives when it must first be fetched to
        the SE (e.g. an external archive across the WAN); ``None`` when
        already resident.
    """

    dataset_id: str
    kind: str
    host: str
    path: str
    size_mb: float
    n_events: int
    splitter_host: str
    origin_host: Optional[str] = None


class LocatorService:
    """Resolves dataset identifiers to :class:`DatasetLocation` records.

    ``site_id`` names the grid site this locator serves.  It is carried
    in every update-hook callback so that federated catalogs subscribed
    to many locators can invalidate only the affected site's replicas
    instead of every copy everywhere.
    """

    def __init__(self, site_id: Optional[str] = None) -> None:
        self.site_id = site_id
        self._locations: Dict[str, DatasetLocation] = {}
        self._update_hooks: List[Callable[[str, Optional[str]], None]] = []

    def add_location(self, location: DatasetLocation) -> None:
        """Register where a dataset lives (one location per id)."""
        if location.kind not in ("gridftp", "database"):
            raise LocatorError(f"unknown location kind {location.kind!r}")
        if location.dataset_id in self._locations:
            raise LocatorError(
                f"dataset {location.dataset_id!r} already has a location"
            )
        self._locations[location.dataset_id] = location

    def replace_location(self, location: DatasetLocation) -> None:
        """Re-register a dataset (its content or placement changed).

        The id must already be known.  Update hooks fire so dependent
        layers — notably the replica catalog — can invalidate every copy
        cut from the previous registration.
        """
        if location.kind not in ("gridftp", "database"):
            raise LocatorError(f"unknown location kind {location.kind!r}")
        if location.dataset_id not in self._locations:
            raise LocatorError(
                f"dataset {location.dataset_id!r} has no location to replace"
            )
        self._locations[location.dataset_id] = location
        for hook in self._update_hooks:
            hook(location.dataset_id, self.site_id)

    def add_update_hook(
        self, hook: Callable[[str, Optional[str]], None]
    ) -> None:
        """Call *hook(dataset_id, site_id)* whenever a location is replaced."""
        self._update_hooks.append(hook)

    def locate(self, dataset_id: str) -> DatasetLocation:
        """Resolve *dataset_id*; raises :class:`LocatorError` if unknown."""
        try:
            return self._locations[dataset_id]
        except KeyError:
            raise LocatorError(
                f"no location registered for dataset {dataset_id!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._locations)
