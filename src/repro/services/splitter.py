"""Splitter Service: split the dataset and disperse parts to the workers.

"The splitter service will import the dataset from the actual location and
split it into a pre-configured number of approximately equal parts ...
Once the dataset is split through the splitter service, the individual
parts of dataset will be transferred using Grid FTP protocol to the
analysis worker nodes" (§3.4).

The split itself "must iterate through the entire dataset in all cases and
only has a very small input/output overhead for the number of split files"
(§4) — modelled as a serial pass at ``split_rate`` seconds per MB on the
storage element, plus a small per-file overhead, reproducing Table 2's
nearly-flat split column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.nodes import Node, StorageElement
from repro.grid.transfer import GridFTPService, ScatterReport
from repro.obs import NULL_OBS, Observability
from repro.services.locator import DatasetLocation
from repro.sim import Environment, Process


class SplitterError(Exception):
    """Raised on invalid split requests."""


@dataclass(frozen=True)
class PartDescriptor:
    """One split part: which events, how big, and where it was delivered."""

    part_index: int
    start_event: int
    stop_event: int
    size_mb: float
    worker: str

    @property
    def n_events(self) -> int:
        """Events in this part."""
        return self.stop_event - self.start_event


@dataclass
class StageReport:
    """Timing breakdown of one staging operation (feeds Tables 1 and 2)."""

    split_seconds: float
    move_parts_seconds: float
    parts: List[PartDescriptor]

    @property
    def total_seconds(self) -> float:
        """Split + move-parts wall clock."""
        return self.split_seconds + self.move_parts_seconds


class SplitterService:
    """Splits a dataset on its storage element and scatters the parts.

    Parameters
    ----------
    env:
        Simulation environment.
    storage:
        The storage element holding (or receiving) the dataset.
    ftp:
        Transfer service used for the scatter.
    split_rate:
        Seconds per MB for the serial split pass (paper fit: 0.25 s/MB).
    per_file_overhead:
        Extra seconds per produced part file ("very small input/output
        overhead for the number of split files", §4).
    """

    #: Per-part range-query planning cost (seconds) when none is given.
    DEFAULT_PER_QUERY_OVERHEAD = 0.5

    def __init__(
        self,
        env: Environment,
        storage: StorageElement,
        ftp: GridFTPService,
        split_rate: float = 0.25,
        per_file_overhead: float = 0.2,
        obs: Optional[Observability] = None,
    ) -> None:
        if split_rate < 0 or per_file_overhead < 0:
            raise ValueError("rates/overheads must be >= 0")
        self.env = env
        self.obs = obs or NULL_OBS
        self.storage = storage
        self.ftp = ftp
        self.split_rate = split_rate
        self.per_file_overhead = per_file_overhead

    def split_seconds_for(self, location: DatasetLocation, n_parts: int) -> float:
        """Cost of the serial split pass for *n_parts* (the §4 model).

        The pass "must iterate through the entire dataset in all cases",
        so the cost is the same whether every part is needed or only a
        few are missing — the replica-aware staging path charges exactly
        this when any part of a geometry has to be (re)produced.
        """
        return location.size_mb * self.split_rate + n_parts * self.per_file_overhead

    def plan_parts(
        self,
        location: DatasetLocation,
        workers: Sequence[str],
        strategy: str = "by-events",
        event_weights: Optional[np.ndarray] = None,
    ) -> List[PartDescriptor]:
        """Assign contiguous event ranges (and sizes) to workers.

        ``by-events`` gives equal event counts; ``by-bytes`` balances a
        per-event weight profile (uniform weights when not provided, in
        which case the two strategies coincide).
        """
        n_parts = len(workers)
        if n_parts < 1:
            raise SplitterError("need at least one worker")
        n_events = location.n_events
        if strategy == "by-events":
            bounds = np.linspace(0, n_events, n_parts + 1).astype(int)
            if event_weights is not None and n_events:
                # Equal event counts, but actual byte sizes follow the
                # per-event weight profile (this is exactly the skew the
                # by-bytes strategy exists to avoid).
                weights = np.asarray(event_weights, dtype=float)
                if len(weights) != n_events:
                    raise SplitterError("event_weights length mismatch")
                cumulative = np.concatenate([[0.0], np.cumsum(weights)])
                total = cumulative[-1]
                sizes = np.array(
                    [
                        location.size_mb
                        * (cumulative[bounds[i + 1]] - cumulative[bounds[i]])
                        / total
                        if total
                        else 0.0
                        for i in range(n_parts)
                    ]
                )
            else:
                sizes = (
                    np.diff(bounds) / n_events * location.size_mb
                    if n_events
                    else np.zeros(n_parts)
                )
        elif strategy == "by-bytes":
            weights = (
                np.ones(n_events)
                if event_weights is None
                else np.asarray(event_weights, dtype=float)
            )
            if len(weights) != n_events:
                raise SplitterError("event_weights length mismatch")
            cumulative = np.concatenate([[0.0], np.cumsum(weights)])
            targets = np.linspace(0, cumulative[-1], n_parts + 1)
            bounds = np.searchsorted(cumulative, targets, side="left")
            bounds[0], bounds[-1] = 0, n_events
            bounds = np.maximum.accumulate(bounds)
            total = cumulative[-1]
            sizes = np.array(
                [
                    location.size_mb
                    * (cumulative[bounds[i + 1]] - cumulative[bounds[i]])
                    / total
                    if total
                    else 0.0
                    for i in range(n_parts)
                ]
            )
        else:
            raise SplitterError(f"unknown split strategy {strategy!r}")
        return [
            PartDescriptor(
                part_index=index,
                start_event=int(bounds[index]),
                stop_event=int(bounds[index + 1]),
                size_mb=float(sizes[index]),
                worker=workers[index],
            )
            for index in range(n_parts)
        ]

    def query_and_scatter(
        self,
        location: DatasetLocation,
        worker_nodes: Sequence[Node],
        strategy: str = "by-events",
        event_weights: Optional[np.ndarray] = None,
        streams: Optional[int] = None,
        per_query_overhead: float = DEFAULT_PER_QUERY_OVERHEAD,
    ) -> Process:
        """Stage a *database*-located dataset: range queries, no split pass.

        §3.4 allows the location to be "a set of contiguous records in a
        database server"; each part is then a server-side range query, so
        the serial whole-dataset split pass disappears — only a small
        per-query planning overhead plus the scatter remain.
        """
        parts = self.plan_parts(
            location,
            [node.name for node in worker_nodes],
            strategy,
            event_weights,
        )

        tracer = self.obs.tracer

        def run():
            planning_started = self.env.now
            plan_span = tracer.child(
                "stage.query_plan", phase="split", parts=len(parts)
            )
            yield self.env.timeout(per_query_overhead * len(parts))
            plan_span.finish()
            planning_seconds = self.env.now - planning_started
            move_started = self.env.now
            move_span = tracer.child("stage.move_parts", phase="move_parts")
            with tracer.activate(move_span):
                scatter = self.ftp.scatter(
                    self.storage,
                    list(worker_nodes),
                    [
                        (f"{location.dataset_id}.range{p.part_index}", p.size_mb)
                        for p in parts
                    ],
                    streams=streams,
                )
            yield scatter
            move_span.finish()
            return StageReport(
                split_seconds=planning_seconds,
                move_parts_seconds=self.env.now - move_started,
                parts=parts,
            )

        return self.env.process(
            tracer.trace_gen("stage.query_and_scatter", run())
        )

    def split_and_scatter(
        self,
        location: DatasetLocation,
        worker_nodes: Sequence[Node],
        strategy: str = "by-events",
        event_weights: Optional[np.ndarray] = None,
        streams: Optional[int] = None,
    ) -> Process:
        """Run the full §3.4 staging pipeline; value is a :class:`StageReport`.

        The split pass (serial, whole dataset) runs first; the scatter then
        pipelines SE disk reads with parallel per-worker transfers.
        """
        parts = self.plan_parts(
            location,
            [node.name for node in worker_nodes],
            strategy,
            event_weights,
        )

        tracer = self.obs.tracer

        def run():
            split_started = self.env.now
            split_span = tracer.child(
                "stage.split",
                phase="split",
                mb=location.size_mb,
                parts=len(parts),
            )
            yield self.env.timeout(
                self.split_seconds_for(location, len(parts))
            )
            split_span.finish()
            split_seconds = self.env.now - split_started

            move_started = self.env.now
            move_span = tracer.child("stage.move_parts", phase="move_parts")
            with tracer.activate(move_span):
                scatter = self.ftp.scatter(
                    self.storage,
                    list(worker_nodes),
                    [
                        (f"{location.dataset_id}.part{p.part_index}", p.size_mb)
                        for p in parts
                    ],
                    streams=streams,
                )
            report: ScatterReport = yield scatter
            move_span.finish()
            return StageReport(
                split_seconds=split_seconds,
                move_parts_seconds=self.env.now - move_started,
                parts=parts,
            )

        return self.env.process(
            tracer.trace_gen("stage.split_and_scatter", run())
        )
