"""Message-envelope transport and the service container.

The reference implementation hosts Java Web Services in a Globus GT4
container and talks SOAP; the result-polling path uses insecure Java RMI
(§3.7).  This module reproduces the *architecture* in-process:

* services register named **operations** with a :class:`ServiceContainer`;
* callers invoke them through :meth:`ServiceContainer.call`, which returns
  a simulation process: the request pays the configured channel latency,
  the operation runs (it may itself be a generator that advances simulated
  time), and the response pays the return latency;
* two channels exist, matching the paper: ``soap`` (secure, higher
  overhead) and ``rmi`` (cheap polling channel); RMI operations require a
  session token minted by the secure channel — "none of the RMI objects
  could be instantiated without first creating a secure session" (§3.7);
* faults raised by operations travel back as :class:`Fault` and re-raise
  at the caller, and per-operation fault injection supports failure
  testing.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.aida.codec import payload_nbytes
from repro.obs import NULL_OBS, Observability
from repro.resilience.retry import RetryPolicy
from repro.sim import Environment, Process


class ServiceError(Exception):
    """Raised for transport-level problems (unknown service/operation...)."""


class Fault(Exception):
    """An application-level fault returned by a service operation."""


class RetryAfter(Fault):
    """Backpressure fault: the request was refused, retry later.

    Raised by the async container when a service's bounded request queue
    is full, and by the admission controller when a VO is over quota with
    no queue room left.  ``retry_after`` is the server's hint (simulated
    seconds) for when a retry is likely to be accepted — the moral
    equivalent of an HTTP 503 ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class Envelope:
    """One request as it travels to a service."""

    service: str
    operation: str
    args: dict
    channel: str = "soap"
    token: Optional[str] = None
    #: Span id of the caller's active span — the trace context that rides
    #: inside the envelope so server-side spans join the caller's tree.
    trace_parent: Optional[str] = None


@dataclass
class ChannelSpec:
    """Latency/behaviour of one transport channel."""

    name: str
    request_latency: float = 0.05
    response_latency: float = 0.05
    requires_token: bool = False


class ServiceContainer:
    """Hosts services and dispatches envelopes with simulated latency.

    Parameters
    ----------
    env:
        Simulation environment.
    soap_latency:
        One-way latency of the secure channel (mutual-auth'd SOAP over the
        WAN in the paper's deployment).
    rmi_latency:
        One-way latency of the cheap polling channel.
    """

    def __init__(
        self,
        env: Environment,
        soap_latency: float = 0.25,
        rmi_latency: float = 0.05,
        obs: Optional[Observability] = None,
    ) -> None:
        self.env = env
        self.obs = obs or NULL_OBS
        self._services: Dict[str, Dict[str, Callable]] = {}
        self._channels: Dict[str, ChannelSpec] = {
            "soap": ChannelSpec("soap", soap_latency, soap_latency),
            "rmi": ChannelSpec(
                "rmi", rmi_latency, rmi_latency, requires_token=True
            ),
        }
        self._valid_tokens: set = set()
        #: operation key -> [exception, remaining count or None].
        self._injected_faults: Dict[str, list] = {}
        #: Completed calls, for diagnostics: (service, operation, channel).
        self.call_log: list = []

    # -- registration -------------------------------------------------------
    def register(self, service_name: str, operations: Dict[str, Callable]) -> None:
        """Register a service's operations (callables or generators)."""
        if service_name in self._services:
            raise ServiceError(f"service {service_name!r} already registered")
        self._services[service_name] = dict(operations)

    def register_object(self, service_name: str, obj: Any) -> None:
        """Register every public method of *obj* as an operation."""
        operations = {
            name: method
            for name, method in inspect.getmembers(obj, callable)
            if not name.startswith("_")
        }
        self.register(service_name, operations)

    @property
    def services(self) -> list:
        """Names of registered services."""
        return sorted(self._services)

    def operations(self, service_name: str) -> list:
        """Operation names of one registered service."""
        operations = self._services.get(service_name)
        if operations is None:
            raise ServiceError(f"unknown service {service_name!r}")
        return sorted(operations)

    # -- tokens ------------------------------------------------------------
    def issue_token(self, token: str) -> None:
        """Mark *token* as a valid session token for the RMI channel."""
        self._valid_tokens.add(token)

    def revoke_token(self, token: str) -> None:
        """Invalidate a session token (idempotent)."""
        self._valid_tokens.discard(token)

    # -- fault injection -------------------------------------------------------
    def inject_fault(
        self,
        service: str,
        operation: str,
        error: Exception,
        count: Optional[int] = None,
    ) -> None:
        """Make calls to (service, operation) raise *error*.

        With ``count=None`` (the default) the fault persists until
        :meth:`clear_fault`; with an integer it is transient — consumed by
        the next *count* calls, after which the operation recovers.
        """
        if count is not None and count < 1:
            raise ValueError("count must be >= 1 (or None for persistent)")
        self._injected_faults[f"{service}.{operation}"] = [error, count]

    def clear_fault(self, service: str, operation: str) -> None:
        """Remove an injected fault (idempotent)."""
        self._injected_faults.pop(f"{service}.{operation}", None)

    # -- dispatch ------------------------------------------------------------
    def call(
        self,
        service: str,
        operation: str,
        args: Optional[dict] = None,
        channel: str = "soap",
        token: Optional[str] = None,
        retry: Optional["RetryPolicy"] = None,
    ) -> Process:
        """Invoke an operation; returns a waitable simulation process.

        The process value is the operation's return value.  Transport and
        application errors fail the process (raise at the ``yield`` site).
        With a *retry* policy, :class:`Fault` responses are retried under
        its backoff schedule (the whole request is re-sent); transport
        errors (:class:`ServiceError`) are never retried.
        """
        envelope = Envelope(
            service,
            operation,
            dict(args or {}),
            channel,
            token,
            trace_parent=self.obs.tracer.current_id,
        )
        if retry is None:
            return self.env.process(self._dispatch(envelope))
        return self.env.process(self._dispatch_with_retry(envelope, retry))

    def _dispatch_with_retry(self, envelope: Envelope, retry: "RetryPolicy"):
        start = self.env.now
        last_fault: Optional[Fault] = None
        for attempt in range(retry.max_attempts):
            try:
                result = yield self.env.process(self._dispatch(envelope))
                return result
            except Fault as fault:
                last_fault = fault
                if not retry.should_retry(attempt, self.env.now - start):
                    break
                yield self.env.timeout(
                    retry.delay(
                        attempt, salt=(envelope.service, envelope.operation)
                    )
                )
        raise last_fault

    def _admit(self, envelope: Envelope, span) -> Optional[Any]:
        """Admission hook run after routing, before the handler.

        The base container admits every request immediately (returns
        ``None``).  :class:`~repro.services.container.AsyncServiceContainer`
        returns a generator here that queues the request behind the
        service's dispatch slots — or raises :class:`RetryAfter` when the
        bounded queue is full.
        """
        return None

    def _dispatch(self, envelope: Envelope):
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        span = tracer.start(
            f"call:{envelope.service}.{envelope.operation}",
            parent_id=envelope.trace_parent,
            channel=envelope.channel,
        )
        started = self.env.now
        key = f"{envelope.service}.{envelope.operation}"
        try:
            spec = self._channels.get(envelope.channel)
            if spec is None:
                raise ServiceError(f"unknown channel {envelope.channel!r}")
            if spec.request_latency:
                yield self.env.timeout(spec.request_latency)
            if spec.requires_token and envelope.token not in self._valid_tokens:
                raise Fault(
                    f"channel {envelope.channel!r} requires a valid session "
                    f"token"
                )
            operations = self._services.get(envelope.service)
            if operations is None:
                raise ServiceError(f"unknown service {envelope.service!r}")
            handler = operations.get(envelope.operation)
            if handler is None:
                raise ServiceError(
                    f"service {envelope.service!r} has no operation "
                    f"{envelope.operation!r}"
                )
            injected = self._injected_faults.get(key)
            if injected is not None:
                error, remaining = injected
                if remaining is not None:
                    if remaining <= 1:
                        del self._injected_faults[key]
                    else:
                        injected[1] = remaining - 1
                raise error
            gate = self._admit(envelope, span)
            if gate is not None:
                # Subclass hook (the async container): wait for a dispatch
                # slot, or refuse with RetryAfter under backpressure.
                yield from gate

            # The span is current while the handler runs synchronously (so
            # Process-returning operations can pick up the trace context)
            # and, via the wrap proxy, whenever a generator handler is
            # resumed later.
            with tracer.activate(span):
                result = handler(**envelope.args)
            if inspect.isgenerator(result):
                # The operation advances simulated time itself.
                result = yield self.env.process(
                    tracer.wrap(span, result, finish=False)
                )
            elif isinstance(result, Process):
                # The operation already started a simulation process.
                result = yield result
            if spec.response_latency:
                yield self.env.timeout(spec.response_latency)
        except BaseException as exc:
            span.finish(error=repr(exc))
            metrics.counter(
                "service_errors_total", "Failed service-operation calls"
            ).inc(operation=key, channel=envelope.channel)
            raise
        span.finish()
        metrics.counter(
            "service_calls_total", "Completed service-operation calls"
        ).inc(operation=key, channel=envelope.channel)
        metrics.histogram(
            "service_call_seconds",
            "Service call latency (request to response, simulated seconds)",
        ).observe(self.env.now - started, channel=envelope.channel)
        # Every completed call is an SLO signal named service.operation —
        # policies like "aida.merged p99 < 250 ms over 60 s" attach here.
        self.obs.slo.record(key, self.env.now - started)
        if metrics.enabled:
            # Response payload accounting: how many bytes each operation
            # ships back (merged trees dominate; the codec + delta work
            # shows up here).  Estimated, so the hot path never pays for a
            # real serialization.
            metrics.counter(
                "service_response_bytes_total",
                "Estimated serialized response bytes per operation",
            ).inc(payload_nbytes(result), operation=key)
        self.call_log.append(
            (envelope.service, envelope.operation, envelope.channel)
        )
        return result
