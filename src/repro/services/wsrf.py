"""WS-Resource Framework: stateful resources behind stateless services.

"Since Web Services are stateless, creating an instance of a Web Service
means creation of an instance of Web Service 'resources'" (§3.2).  A
:class:`ResourceHome` mints :class:`ResourceRef` pointers (id + key), holds
the resource properties, and enforces lifetimes in simulated time — the
session service stores its per-session state here exactly like the GT4
implementation did.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.sim import Environment


class WsrfError(Exception):
    """Raised on unknown, destroyed, expired, or unauthorized resources."""


@dataclass(frozen=True)
class ResourceRef:
    """The client-visible 'pointer' to a Web Service resource."""

    resource_id: str
    key: str
    resource_type: str


class _Resource:
    __slots__ = ("ref", "properties", "created_at", "terminate_at", "destroyed")

    def __init__(self, ref: ResourceRef, properties: dict, created_at: float,
                 terminate_at: Optional[float]) -> None:
        self.ref = ref
        self.properties = properties
        self.created_at = created_at
        self.terminate_at = terminate_at
        self.destroyed = False


class ResourceHome:
    """Factory and registry for one type of stateful resource.

    Parameters
    ----------
    env:
        Simulation environment (supplies the clock for lifetimes).
    resource_type:
        Label baked into every ref (e.g. ``"session"``).
    default_lifetime:
        Seconds until automatic termination; ``None`` = immortal.
    """

    def __init__(
        self,
        env: Environment,
        resource_type: str,
        default_lifetime: Optional[float] = None,
    ) -> None:
        if default_lifetime is not None and default_lifetime <= 0:
            raise ValueError("default_lifetime must be > 0")
        self.env = env
        self.resource_type = resource_type
        self.default_lifetime = default_lifetime
        self._resources: Dict[str, _Resource] = {}
        self._counter = 0

    # -- lifecycle ----------------------------------------------------------
    def create(
        self,
        properties: Optional[dict] = None,
        lifetime: Optional[float] = None,
        resource_id: Optional[str] = None,
    ) -> ResourceRef:
        """Create a resource; returns its ref (id + access key).

        Passing ``resource_id`` adopts an existing identity (service
        recovery re-minting a journaled session id); the counter is
        advanced past any numeric suffix so later ids cannot collide.
        """
        if resource_id is not None:
            suffix = resource_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                self._counter = max(self._counter, int(suffix))
        else:
            self._counter += 1
            resource_id = f"{self.resource_type}-{self._counter}"
        ref = ResourceRef(
            resource_id=resource_id,
            key=secrets.token_hex(8),
            resource_type=self.resource_type,
        )
        life = lifetime if lifetime is not None else self.default_lifetime
        terminate_at = self.env.now + life if life is not None else None
        self._resources[resource_id] = _Resource(
            ref, dict(properties or {}), self.env.now, terminate_at
        )
        return ref

    def _fetch(self, ref: ResourceRef) -> _Resource:
        resource = self._resources.get(ref.resource_id)
        if resource is None or resource.destroyed:
            raise WsrfError(f"no such resource {ref.resource_id!r}")
        if resource.ref.key != ref.key:
            raise WsrfError(f"bad key for resource {ref.resource_id!r}")
        if (
            resource.terminate_at is not None
            and self.env.now > resource.terminate_at
        ):
            raise WsrfError(f"resource {ref.resource_id!r} expired")
        return resource

    def destroy(self, ref: ResourceRef) -> None:
        """Explicitly destroy a resource (WS-ResourceLifetime Destroy)."""
        self._fetch(ref).destroyed = True

    def exists(self, ref: ResourceRef) -> bool:
        """Whether the resource is alive and the key matches."""
        try:
            self._fetch(ref)
            return True
        except WsrfError:
            return False

    def set_termination_time(self, ref: ResourceRef, at: float) -> None:
        """Adjust a resource's termination time (lease renewal)."""
        resource = self._fetch(ref)
        if at <= self.env.now:
            raise WsrfError("termination time must be in the future")
        resource.terminate_at = at

    # -- properties ------------------------------------------------------------
    def get_property(self, ref: ResourceRef, name: str) -> Any:
        """Read one resource property (WS-ResourceProperties GetRP)."""
        resource = self._fetch(ref)
        if name not in resource.properties:
            raise WsrfError(
                f"resource {ref.resource_id!r} has no property {name!r}"
            )
        return resource.properties[name]

    def set_property(self, ref: ResourceRef, name: str, value: Any) -> None:
        """Write one resource property (SetRP)."""
        self._fetch(ref).properties[name] = value

    def properties(self, ref: ResourceRef) -> dict:
        """All properties of the resource (copy)."""
        return dict(self._fetch(ref).properties)

    @property
    def live_count(self) -> int:
        """Number of non-destroyed, non-expired resources."""
        now = self.env.now
        return sum(
            1
            for r in self._resources.values()
            if not r.destroyed
            and (r.terminate_at is None or now <= r.terminate_at)
        )
