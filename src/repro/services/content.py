"""Deterministic content store: the stand-in for physical dataset files.

The paper's datasets are real LCIO files on SLAC storage.  In the
simulation, a dataset's *content* is a deterministic function of its
catalog recipe (generator kind + seed), materialized on demand for any
event range.  This gives every analysis engine the exact events of "its"
part without shipping real bytes around, while the byte *sizes* still flow
through the staging cost model.

Block-deterministic scheme: events are produced in fixed-size blocks; block
``k`` of dataset seed ``s`` is generated with seed ``f(s, k)``, so
``events_for(range)`` touches only the overlapping blocks — random access
over arbitrarily large virtual datasets stays O(range), not O(dataset).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.dataset.events import EventBatch
from repro.dataset.generator import GeneratorConfig, ILCEventGenerator
from repro.analysis.trading import generate_trading_days

#: Events per deterministic generation block.
BLOCK_EVENTS = 10_000


class ContentError(Exception):
    """Raised for unknown content kinds or bad ranges."""


def _block_seed(seed: int, block: int) -> int:
    # Any injective-enough mixing works; collisions across datasets are
    # irrelevant, only per-dataset determinism matters.
    return (seed * 1_000_003 + block * 7_919 + 12_345) % (2**63)


class ContentStore:
    """Materializes event ranges for catalog entries.

    Content *kinds* are pluggable readers: §2.3 requires that freshly
    started engines "dynamically pickup new data format readers", so new
    kinds can be registered at runtime with :meth:`register_kind` and are
    immediately usable by every engine sharing the store.
    """

    def __init__(self) -> None:
        self._generator_cache: Dict[tuple, EventBatch] = {}
        self._cache_order: List[tuple] = []
        self._max_cached_blocks = 8
        # kind -> factory(content, block_seed, n_events) -> EventBatch
        self._readers: Dict[str, object] = {
            "ilc": _ilc_block,
            "trading": _trading_block,
        }

    def register_kind(self, kind: str, factory) -> None:
        """Register a new data-format reader.

        ``factory(content, block_seed, n_events)`` must return an
        :class:`~repro.dataset.events.EventBatch` of exactly *n_events*
        deterministic events for that seed.
        """
        if not kind:
            raise ContentError("kind must be non-empty")
        if kind in self._readers:
            raise ContentError(f"content kind {kind!r} already registered")
        if not callable(factory):
            raise ContentError("factory must be callable")
        self._readers[kind] = factory

    @property
    def kinds(self) -> List[str]:
        """Registered content kinds."""
        return sorted(self._readers)

    def events_for(self, content: dict, start: int, stop: int) -> EventBatch:
        """Events [start, stop) of the dataset described by *content*.

        ``content`` must carry ``kind`` (a registered reader) and ``seed``;
        ``ilc`` additionally honours ``signal_fraction``.
        """
        if start < 0 or stop < start:
            raise ContentError(f"bad event range [{start}, {stop})")
        if start == stop:
            return EventBatch.empty()
        kind = content.get("kind")
        if kind not in self._readers:
            raise ContentError(f"unknown content kind {kind!r}")
        seed = int(content.get("seed", 0))

        pieces: List[EventBatch] = []
        first_block = start // BLOCK_EVENTS
        last_block = (stop - 1) // BLOCK_EVENTS
        for block in range(first_block, last_block + 1):
            block_start = block * BLOCK_EVENTS
            batch = self._block(kind, content, seed, block)
            lo = max(start, block_start) - block_start
            hi = min(stop, block_start + BLOCK_EVENTS) - block_start
            hi = min(hi, len(batch))
            if lo < hi:
                pieces.append(batch.slice(lo, hi))
        return EventBatch.concatenate(pieces)

    def _block(self, kind: str, content: dict, seed: int, block: int) -> EventBatch:
        key = (kind, seed, block, tuple(sorted(content.items())))
        cached = self._generator_cache.get(key)
        if cached is not None:
            return cached
        block_seed = _block_seed(seed, block)
        batch = self._readers[kind](content, block_seed, BLOCK_EVENTS)
        if len(batch) != BLOCK_EVENTS:
            raise ContentError(
                f"reader for kind {kind!r} produced {len(batch)} events, "
                f"expected {BLOCK_EVENTS}"
            )
        batch.event_ids[:] = batch.event_ids + block * BLOCK_EVENTS
        self._generator_cache[key] = batch
        self._cache_order.append(key)
        if len(self._cache_order) > self._max_cached_blocks:
            evicted = self._cache_order.pop(0)
            self._generator_cache.pop(evicted, None)
        return batch


def _ilc_block(content: dict, block_seed: int, n_events: int) -> EventBatch:
    """Built-in reader: synthetic ILC physics events."""
    config = _ilc_config(content)
    return ILCEventGenerator(config, seed=block_seed).generate(n_events)


def _trading_block(content: dict, block_seed: int, n_events: int) -> EventBatch:
    """Built-in reader: synthetic trading-day records."""
    return generate_trading_days(
        n_events,
        trades_per_day=int(content.get("trades_per_day", 50)),
        seed=block_seed,
    )


def _ilc_config(content: dict) -> GeneratorConfig:
    signal_fraction = content.get("signal_fraction")
    if signal_fraction is None:
        return GeneratorConfig()
    signal = float(signal_fraction)
    if not 0 <= signal <= 1:
        raise ContentError("signal_fraction must be within [0, 1]")
    background = 1.0 - signal
    default = dict(GeneratorConfig().fractions)
    background_total = sum(v for k, v in default.items() if k != "zh")
    fractions = tuple(
        [("zh", signal)]
        + [
            (name, background * value / background_total)
            for name, value in default.items()
            if name != "zh"
        ]
    )
    return GeneratorConfig(fractions=fractions)
