"""Async service container: a request loop on the simulated clock.

The base :class:`~repro.services.envelope.ServiceContainer` dispatches
every envelope immediately — an infinitely wide server.  Real GT4
containers are not: each hosted service has a bounded request queue and a
finite dispatch pool, and under thousands of concurrent sessions the
dispatch cost (not the handler work) is what serializes.

:class:`AsyncServiceContainer` models exactly that, per service:

* a **bounded FIFO request queue** — arrivals beyond ``queue_depth`` are
  refused with :class:`~repro.services.envelope.RetryAfter` carrying a
  drain-time hint (HTTP 503 semantics);
* ``concurrency`` **dispatch slots** — each queued request waits for a
  slot, which charges only ``dispatch_overhead_s`` (un-marshalling, the
  serialized CPU slice) and then releases; the handler itself runs
  cooperatively in the caller's process, so a slow operation (session
  creation, a large merge) never head-of-line blocks the queue behind it;
* queue-depth gauges, queue-wait histograms, and rejection counters on
  the observability plane.

Services without a configured :class:`ServiceProfile` fall through to the
base container's direct dispatch, bit-identical in timing and ordering —
existing single-client scenarios are unaffected until a profile opts a
service in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs import Observability
from repro.services.envelope import (
    Envelope,
    RetryAfter,
    ServiceContainer,
    ServiceError,
)
from repro.sim import Environment, Store


@dataclass(frozen=True)
class ServiceProfile:
    """Request-loop shape of one hosted service.

    Parameters
    ----------
    concurrency:
        Dispatch slots: how many requests the service can be
        un-marshalling at once (a GT4 thread pool, not the handler
        parallelism — handlers always run cooperatively).
    queue_depth:
        Bound on requests waiting for a slot; ``None`` = unbounded.
        Arrivals beyond the bound are refused with ``RetryAfter``.
    dispatch_overhead_s:
        Serialized per-request cost charged while a slot is held
        (parsing, routing, marshalling).  The knob that makes thousands
        of concurrent polls queue instead of dispatching for free.
    """

    concurrency: int = 4
    queue_depth: Optional[int] = None
    dispatch_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1 (or None)")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch_overhead_s must be >= 0")


class _ServiceState:
    """Mutable queue state of one profiled service."""

    __slots__ = ("queue", "backlog", "served", "rejected")

    def __init__(self, env: Environment) -> None:
        self.queue = Store(env)
        #: Requests admitted to the queue and not yet dispatched.
        self.backlog = 0
        self.served = 0
        self.rejected = 0


class AsyncServiceContainer(ServiceContainer):
    """A :class:`ServiceContainer` with per-service request loops."""

    def __init__(
        self,
        env: Environment,
        soap_latency: float = 0.25,
        rmi_latency: float = 0.05,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(env, soap_latency, rmi_latency, obs=obs)
        self._profiles: Dict[str, ServiceProfile] = {}
        self._states: Dict[str, _ServiceState] = {}
        self._depth_gauge = self.obs.metrics.gauge(
            "container_queue_depth",
            "Requests waiting for a dispatch slot, per service",
        )
        self._wait_metric = self.obs.metrics.histogram(
            "container_queue_wait_seconds",
            "Request wait from arrival to dispatch slot (simulated seconds)",
        )
        self._reject_metric = self.obs.metrics.counter(
            "container_rejections_total",
            "Requests refused because a service queue was full",
        )

    # -- configuration --------------------------------------------------
    def configure_service(self, service: str, profile: ServiceProfile) -> None:
        """Attach a request loop to *service*; starts its dispatch slots.

        May be called before or after the service registers its
        operations (routing errors still resolve before queueing, so an
        unknown operation never occupies queue space).
        """
        if service in self._profiles:
            raise ServiceError(f"service {service!r} already has a profile")
        self._profiles[service] = profile
        state = _ServiceState(self.env)
        self._states[service] = state
        for _ in range(profile.concurrency):
            self.env.process(self._request_loop(profile, state))

    def profile(self, service: str) -> Optional[ServiceProfile]:
        """The service's profile, or ``None`` (direct dispatch)."""
        return self._profiles.get(service)

    def queue_backlog(self, service: str) -> int:
        """Requests currently waiting for a dispatch slot."""
        state = self._states.get(service)
        return state.backlog if state is not None else 0

    def stats(self) -> Dict[str, dict]:
        """Per-profiled-service queue counters (diagnostics)."""
        return {
            service: {
                "backlog": state.backlog,
                "served": state.served,
                "rejected": state.rejected,
            }
            for service, state in sorted(self._states.items())
        }

    # -- request loop ---------------------------------------------------
    def _admit(self, envelope: Envelope, span) -> Optional[Any]:
        profile = self._profiles.get(envelope.service)
        if profile is None:
            return super()._admit(envelope, span)
        return self._enqueue(envelope, span, profile)

    def _enqueue(self, envelope: Envelope, span, profile: ServiceProfile):
        state = self._states[envelope.service]
        if (
            profile.queue_depth is not None
            and state.backlog >= profile.queue_depth
        ):
            state.rejected += 1
            self._reject_metric.inc(service=envelope.service)
            raise RetryAfter(
                f"service {envelope.service!r} request queue is full "
                f"({state.backlog} waiting)",
                retry_after=self._drain_hint(profile, state),
            )
        state.backlog += 1
        self._depth_gauge.set(state.backlog, service=envelope.service)
        arrival = self.env.now
        ticket = self.env.event()
        yield state.queue.put(ticket)
        yield ticket
        state.backlog -= 1
        state.served += 1
        self._depth_gauge.set(state.backlog, service=envelope.service)
        wait = self.env.now - arrival
        self._wait_metric.observe(wait, service=envelope.service)
        span.set(queue_wait_s=wait)

    def _request_loop(self, profile: ServiceProfile, state: _ServiceState):
        """One dispatch slot: drain tickets, charging the dispatch cost."""
        while True:
            ticket = yield state.queue.get()
            if profile.dispatch_overhead_s:
                yield self.env.timeout(profile.dispatch_overhead_s)
            if not ticket.triggered:
                ticket.succeed()

    def _drain_hint(
        self, profile: ServiceProfile, state: _ServiceState
    ) -> float:
        """Deterministic ``retry_after`` estimate: time to drain the queue."""
        if profile.dispatch_overhead_s:
            return max(
                profile.dispatch_overhead_s,
                profile.dispatch_overhead_s
                * (state.backlog + 1)
                / profile.concurrency,
            )
        return 1.0
