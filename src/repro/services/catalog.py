"""Dataset Catalog Service: hierarchical metadata, browse, and search.

"The Catalog makes no assumptions about the type of metadata stored in the
catalog except that the metadata consists of key-value pairs stored in a
hierarchical tree" (§3.3).  Entries live at slash paths
(``/ilc/simulation/zh500``); what the client selects is a *dataset
reference* (id + metadata) — the actual data stays wherever the Locator
says it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.services.query import QueryError, parse_query


class CatalogError(Exception):
    """Raised on unknown paths/ids or conflicting registrations."""


@dataclass(frozen=True)
class DatasetEntry:
    """A catalog record: everything the client learns before staging.

    Attributes
    ----------
    dataset_id:
        Globally unique identifier (what the Locator resolves).
    path:
        Catalog tree position, e.g. ``/ilc/simulation/zh-500gev``.
    metadata:
        Free-form key/value pairs searched by the query language.
    size_mb:
        Nominal dataset size (drives the staging cost model).
    n_events:
        Number of records.
    content:
        Recipe for the deterministic content store (e.g. generator kind +
        seed), standing in for the physical files.
    """

    dataset_id: str
    path: str
    metadata: Dict[str, Any]
    size_mb: float
    n_events: int
    content: Dict[str, Any] = field(default_factory=dict)

    def search_document(self) -> Dict[str, Any]:
        """Metadata view used by queries (adds the intrinsic fields)."""
        doc = dict(self.metadata)
        doc.setdefault("dataset_id", self.dataset_id)
        doc.setdefault("size_mb", self.size_mb)
        doc.setdefault("n_events", self.n_events)
        return doc


class DatasetCatalogService:
    """In-memory hierarchical dataset catalog."""

    def __init__(self) -> None:
        self._by_id: Dict[str, DatasetEntry] = {}
        self._by_path: Dict[str, DatasetEntry] = {}

    # -- registration -------------------------------------------------------
    def register(self, entry: DatasetEntry) -> None:
        """Add an entry; ids and paths must be unique."""
        if not entry.path.startswith("/"):
            raise CatalogError(f"path must be absolute: {entry.path!r}")
        if entry.dataset_id in self._by_id:
            raise CatalogError(f"duplicate dataset id {entry.dataset_id!r}")
        if entry.path in self._by_path:
            raise CatalogError(f"duplicate catalog path {entry.path!r}")
        if entry.size_mb < 0 or entry.n_events < 0:
            raise CatalogError("size_mb and n_events must be >= 0")
        self._by_id[entry.dataset_id] = entry
        self._by_path[entry.path] = entry

    def __len__(self) -> int:
        return len(self._by_id)

    # -- browse ------------------------------------------------------------
    def browse(self, path: str = "/") -> Dict[str, List[str]]:
        """List sub-directories and datasets directly under *path*.

        Returns ``{"directories": [...], "datasets": [...]}`` with names
        relative to *path* (directories without trailing slash).
        """
        prefix = path.rstrip("/") + "/"
        if prefix == "//":
            prefix = "/"
        directories = set()
        datasets = []
        for entry_path in self._by_path:
            if not entry_path.startswith(prefix):
                continue
            remainder = entry_path[len(prefix):]
            if "/" in remainder:
                directories.add(remainder.split("/", 1)[0])
            else:
                datasets.append(remainder)
        if not directories and not datasets and prefix != "/":
            raise CatalogError(f"no catalog entries under {path!r}")
        return {
            "directories": sorted(directories),
            "datasets": sorted(datasets),
        }

    # -- lookup ------------------------------------------------------------
    def entry(self, dataset_id: str) -> DatasetEntry:
        """Fetch an entry by dataset id."""
        try:
            return self._by_id[dataset_id]
        except KeyError:
            raise CatalogError(f"unknown dataset id {dataset_id!r}") from None

    def entry_at(self, path: str) -> DatasetEntry:
        """Fetch an entry by catalog path."""
        try:
            return self._by_path[path]
        except KeyError:
            raise CatalogError(f"no dataset at {path!r}") from None

    # -- search ------------------------------------------------------------
    def search(self, query: str) -> List[DatasetEntry]:
        """Entries whose metadata satisfies *query*, in path order.

        Raises :class:`CatalogError` on malformed queries (wrapping
        :class:`~repro.services.query.QueryError`).
        """
        try:
            ast = parse_query(query)
        except QueryError as exc:
            raise CatalogError(f"bad query: {exc}") from exc
        return [
            entry
            for path, entry in sorted(self._by_path.items())
            if ast.evaluate(entry.search_document())
        ]
