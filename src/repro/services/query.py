"""Query language for the dataset catalog.

"The dataset catalog service ... allows us either to browse for an
interesting dataset, or to search for interesting data using a query
language that operates on the metadata" (§3.3).  The language is a small
boolean expression grammar over metadata key/value pairs::

    experiment == "ilc" and energy >= 500 and name like "higgs*"
    (year > 2005 or detector == "sid") and not tag == "bad"

Grammar (recursive descent)::

    expr       := and_expr ('or' and_expr)*
    and_expr   := not_expr ('and' not_expr)*
    not_expr   := 'not' not_expr | primary
    primary    := '(' expr ')' | comparison
    comparison := IDENT OP literal
    OP         := '==' '!=' '<' '<=' '>' '>=' 'like'
    literal    := NUMBER | STRING

Comparisons against a missing key are false (and their negation true).
``like`` performs case-insensitive glob matching.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union


class QueryError(Exception):
    """Raised on malformed query strings."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<op><=|>=|==|!=|<|>)
      | (?P<string>"[^"]*"|'[^']*')
      | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "like"}


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot tokenize at: {remainder[:20]!r}")
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(_Token(value.lower(), value.lower()))
        else:
            tokens.append(_Token(kind, value))
    return tokens


# -- AST -----------------------------------------------------------------

@dataclass(frozen=True)
class Comparison:
    """``key op literal`` leaf node."""

    key: str
    op: str
    literal: Union[float, str]

    def evaluate(self, metadata: Dict[str, Any]) -> bool:
        """Evaluate against a metadata dict; missing keys compare false."""
        if self.key not in metadata:
            return False
        value = metadata[self.key]
        literal = self.literal
        if self.op == "like":
            return fnmatch.fnmatch(str(value).lower(), str(literal).lower())
        if isinstance(literal, float):
            try:
                value = float(value)
            except (TypeError, ValueError):
                return False
        else:
            value = str(value)
        if self.op == "==":
            return value == literal
        if self.op == "!=":
            return value != literal
        if self.op == "<":
            return value < literal
        if self.op == "<=":
            return value <= literal
        if self.op == ">":
            return value > literal
        if self.op == ">=":
            return value >= literal
        raise QueryError(f"unknown operator {self.op!r}")  # pragma: no cover


@dataclass(frozen=True)
class Not:
    """Logical negation node."""

    child: Any

    def evaluate(self, metadata: Dict[str, Any]) -> bool:
        """Negate the child."""
        return not self.child.evaluate(metadata)


@dataclass(frozen=True)
class BoolOp:
    """``and`` / ``or`` over two or more children."""

    op: str
    children: tuple

    def evaluate(self, metadata: Dict[str, Any]) -> bool:
        """Short-circuit evaluation."""
        if self.op == "and":
            return all(c.evaluate(metadata) for c in self.children)
        return any(c.evaluate(metadata) for c in self.children)


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise QueryError(f"expected {kind}, got {token.value!r}")
        return token

    def parse(self):
        expr = self._or_expr()
        if self._peek() is not None:
            raise QueryError(f"trailing input at {self._peek().value!r}")
        return expr

    def _or_expr(self):
        children = [self._and_expr()]
        while self._peek() is not None and self._peek().kind == "or":
            self._next()
            children.append(self._and_expr())
        return children[0] if len(children) == 1 else BoolOp("or", tuple(children))

    def _and_expr(self):
        children = [self._not_expr()]
        while self._peek() is not None and self._peek().kind == "and":
            self._next()
            children.append(self._not_expr())
        return children[0] if len(children) == 1 else BoolOp("and", tuple(children))

    def _not_expr(self):
        if self._peek() is not None and self._peek().kind == "not":
            self._next()
            return Not(self._not_expr())
        return self._primary()

    def _primary(self):
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if token.kind == "lparen":
            self._next()
            expr = self._or_expr()
            self._expect("rparen")
            return expr
        return self._comparison()

    def _comparison(self) -> Comparison:
        key_token = self._expect("word")
        op_token = self._next()
        if op_token.kind == "like":
            op = "like"
        elif op_token.kind == "op":
            op = op_token.value
        else:
            raise QueryError(f"expected operator after {key_token.value!r}")
        literal_token = self._next()
        if literal_token.kind == "number":
            literal: Union[float, str] = float(literal_token.value)
        elif literal_token.kind == "string":
            literal = literal_token.value[1:-1]
        elif literal_token.kind == "word":
            # Bare words allowed as string literals for convenience.
            literal = literal_token.value
        else:
            raise QueryError(f"expected literal, got {literal_token.value!r}")
        if op == "like" and not isinstance(literal, str):
            raise QueryError("'like' requires a string pattern")
        return Comparison(key_token.value, op, literal)


def parse_query(text: str):
    """Parse a query string into an evaluable AST.

    Raises :class:`QueryError` on malformed input (including empty
    queries).
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens).parse()


def evaluate_query(text: str, metadata: Dict[str, Any]) -> bool:
    """Convenience: parse and evaluate *text* against *metadata*."""
    return parse_query(text).evaluate(metadata)
